#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/retired.hpp"

namespace pathcopy {
namespace {

// Canary node: records destruction so premature frees are observable.
struct Canary {
  explicit Canary(std::atomic<int>* counter) : destroyed(counter) {}
  ~Canary() {
    if (destroyed != nullptr) destroyed->fetch_add(1);
  }
  std::atomic<int>* destroyed;
  std::uint64_t payload = 0xfeedfacecafebeefULL;
};

template <class Alloc>
const Canary* make_canary(Alloc& a, std::atomic<int>* counter) {
  void* p = a.allocate(sizeof(Canary), alignof(Canary));
  return ::new (p) Canary(counter);
}

std::vector<reclaim::Retired> one_retired(alloc::MallocAlloc& a, const Canary* c) {
  std::vector<reclaim::Retired> v;
  v.push_back(reclaim::make_retired(c, a.retire_backend()));
  return v;
}

TEST(Epoch, PinReturnsRootValue) {
  reclaim::EpochReclaimer smr;
  auto h = smr.register_thread();
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{1};
  auto g = smr.pin(h, root, ver);
  EXPECT_EQ(g.root(), &dummy);
}

TEST(Epoch, RetireAndDrainFrees) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  {
    reclaim::EpochReclaimer smr;
    auto h = smr.register_thread();
    const Canary* c = make_canary(a, &destroyed);
    smr.retire_bundle(h, 2, nullptr, nullptr, one_retired(a, c));
    EXPECT_EQ(smr.pending_nodes(), 1u);
    smr.drain_all();
    EXPECT_EQ(smr.freed_nodes(), 1u);
  }
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Epoch, GuardBlocksReclamation) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::EpochReclaimer smr;
  auto reader = smr.register_thread();
  auto writer = smr.register_thread();
  const Canary* c = make_canary(a, &destroyed);
  std::atomic<const void*> root{c};
  std::atomic<std::uint64_t> ver{1};

  {
    auto g = smr.pin(reader, root, ver);  // reader active in current epoch
    smr.retire_bundle(writer, 2, nullptr, nullptr, one_retired(a, c));
    // Hammer the retire path so try_advance runs many times; the active
    // guard pins the epoch, so the canary must survive.
    for (int i = 0; i < 1000; ++i) {
      smr.retire_bundle(writer, 2, nullptr, nullptr, {});
    }
    EXPECT_EQ(destroyed.load(), 0);
    // The canary is still dereferenceable under the guard.
    EXPECT_EQ(static_cast<const Canary*>(g.root())->payload,
              0xfeedfacecafebeefULL);
  }
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Epoch, EpochAdvancesWhenQuiescent) {
  reclaim::EpochReclaimer smr;
  auto h = smr.register_thread();
  const auto before = smr.global_epoch();
  // No guards held: retire traffic advances the epoch.
  for (std::uint64_t i = 0; i < 3 * reclaim::EpochReclaimer::kScanInterval; ++i) {
    smr.retire_bundle(h, 2, nullptr, nullptr, {});
  }
  EXPECT_GT(smr.global_epoch(), before);
  EXPECT_GT(smr.epoch_advances(), 0u);
}

TEST(Epoch, NaturalReclamationWithoutDrain) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::EpochReclaimer smr;
  auto h = smr.register_thread();
  const Canary* c = make_canary(a, &destroyed);
  smr.retire_bundle(h, 2, nullptr, nullptr, one_retired(a, c));
  // Enough idle retires for the epoch to advance twice and ripen the bucket.
  for (std::uint64_t i = 0; i < 10 * reclaim::EpochReclaimer::kScanInterval; ++i) {
    smr.retire_bundle(h, 2, nullptr, nullptr, {});
  }
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Epoch, HandleReleaseFlushesToOrphans) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::EpochReclaimer smr;
  {
    auto h = smr.register_thread();
    const Canary* c = make_canary(a, &destroyed);
    smr.retire_bundle(h, 2, nullptr, nullptr, one_retired(a, c));
  }  // handle dies with pending garbage -> orphaned
  EXPECT_EQ(destroyed.load(), 0);
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Epoch, SlotReuseAfterRelease) {
  reclaim::EpochReclaimer smr;
  std::optional<reclaim::EpochReclaimer::ThreadHandle> h1(smr.register_thread());
  h1.reset();
  auto h2 = smr.register_thread();  // reuses the released slot
  auto h3 = smr.register_thread();  // fresh slot
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{1};
  { auto g2 = smr.pin(h2, root, ver); }
  { auto g3 = smr.pin(h3, root, ver); }
}

TEST(Epoch, GuardsDoNotNestButSequentialPinsWork) {
  reclaim::EpochReclaimer smr;
  auto h = smr.register_thread();
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{1};
  for (int i = 0; i < 100; ++i) {
    auto g = smr.pin(h, root, ver);
    EXPECT_EQ(g.root(), &dummy);
  }
}

TEST(Epoch, ConcurrentRetireStress) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  {
    reclaim::EpochReclaimer smr;
    std::atomic<const void*> root{nullptr};
    std::atomic<std::uint64_t> ver{1};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        auto h = smr.register_thread();
        for (int i = 0; i < kOps; ++i) {
          const Canary* c = make_canary(a, &destroyed);
          {
            auto g = smr.pin(h, root, ver);
            smr.retire_bundle(h, 2, nullptr, nullptr, one_retired(a, c));
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    smr.drain_all();
  }
  EXPECT_EQ(destroyed.load(), kThreads * kOps);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Epoch, ReaderNeverSeesFreedMemory) {
  // Writers continuously replace a shared canary and retire the old one;
  // readers dereference under guards. ASan/valgrind would flag violations;
  // structurally we assert payload integrity.
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::EpochReclaimer smr;
  std::atomic<const void*> root{make_canary(a, &destroyed)};
  std::atomic<std::uint64_t> ver{1};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    auto h = smr.register_thread();
    for (int i = 0; i < 5000; ++i) {
      const Canary* fresh = make_canary(a, &destroyed);
      const void* old = root.exchange(fresh);
      smr.retire_bundle(h, 2, nullptr, nullptr,
                        one_retired(a, static_cast<const Canary*>(old)));
    }
    stop.store(true);
  });
  std::thread reader([&] {
    auto h = smr.register_thread();
    while (!stop.load()) {
      auto g = smr.pin(h, root, ver);
      const auto* c = static_cast<const Canary*>(g.root());
      ASSERT_EQ(c->payload, 0xfeedfacecafebeefULL);
    }
  });
  writer.join();
  reader.join();
  // Free the final canary and drain.
  const auto* last = static_cast<const Canary*>(root.load());
  auto h = smr.register_thread();
  smr.retire_bundle(h, 2, nullptr, nullptr, one_retired(a, last));
  smr.drain_all();
  EXPECT_EQ(a.stats().live_blocks(), 0u);
  EXPECT_EQ(destroyed.load(), 5001);
}

TEST(Leaky, NeverFrees) {
  // Arena-backed: leaked nodes are reclaimed wholesale by the arena.
  reclaim::LeakyReclaimer smr;
  auto h = smr.register_thread();
  std::atomic<const void*> root{nullptr};
  std::atomic<std::uint64_t> ver{1};
  auto g = smr.pin(h, root, ver);
  EXPECT_EQ(g.root(), nullptr);
  std::vector<reclaim::Retired> batch(3);
  smr.retire_bundle(h, 2, nullptr, nullptr, std::move(batch));
  EXPECT_EQ(smr.leaked_nodes(), 3u);
  EXPECT_EQ(smr.freed_nodes(), 0u);
  smr.drain_all();
  EXPECT_EQ(smr.freed_nodes(), 0u);
}

}  // namespace
}  // namespace pathcopy
