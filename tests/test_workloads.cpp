#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "bench_util/workloads.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

TEST(Workloads, BatchKeysAreDisjointAndUnique) {
  const auto keys = bench::make_batch_keys(1000, 4, 250, 7);
  std::unordered_set<std::int64_t> all;
  for (const auto k : keys.initial) EXPECT_TRUE(all.insert(k).second);
  for (const auto& per : keys.per_thread) {
    EXPECT_EQ(per.size(), 250u);
    for (const auto k : per) EXPECT_TRUE(all.insert(k).second);
  }
  EXPECT_EQ(all.size(), 1000u + 4u * 250u);
}

TEST(Workloads, BatchKeysDeterministicPerSeed) {
  const auto a = bench::make_batch_keys(100, 2, 50, 9);
  const auto b = bench::make_batch_keys(100, 2, 50, 9);
  EXPECT_EQ(a.initial, b.initial);
  EXPECT_EQ(a.per_thread, b.per_thread);
  const auto c = bench::make_batch_keys(100, 2, 50, 10);
  EXPECT_NE(a.initial, c.initial);
}

TEST(Workloads, RandomInitialInRangeWithDuplicates) {
  bench::RandomWorkloadConfig cfg;
  cfg.initial_inserts = 50000;
  cfg.lo = -1000;
  cfg.hi = 1000;
  const auto draws = bench::make_random_initial(cfg, 3);
  EXPECT_EQ(draws.size(), 50000u);
  for (const auto k : draws) {
    ASSERT_GE(k, cfg.lo);
    ASSERT_LE(k, cfg.hi);
  }
  const auto unique = bench::dedup_sorted(draws);
  // 50000 draws from 2001 values: nearly all values hit, many duplicates.
  EXPECT_LT(unique.size(), draws.size());
  EXPECT_GT(unique.size(), 1900u);
  EXPECT_TRUE(std::is_sorted(unique.begin(), unique.end()));
}

TEST(Runner, SummarizeBasics) {
  const auto s = bench::summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  const auto empty = bench::summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Runner, RunTrialsCollects) {
  int calls = 0;
  const auto s = bench::run_trials(5, [&] { return static_cast<double>(++calls); });
  EXPECT_EQ(calls, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Runner, RunTimedCountsWork) {
  using namespace std::chrono_literals;
  const auto run = bench::run_timed(2, 50ms, [](std::size_t, const std::atomic<bool>& stop) {
    std::uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) ++ops;
    return ops;
  });
  EXPECT_GT(run.total_ops, 0u);
  EXPECT_GT(run.seconds, 0.04);
  EXPECT_GT(run.ops_per_sec(), 0.0);
}

TEST(Runner, HardwareThreadsPositive) {
  EXPECT_GE(bench::hardware_threads(), 1u);
}

TEST(Table, FormatSpeedup) {
  EXPECT_EQ(bench::format_speedup(1.466), "1.47x");
  EXPECT_EQ(bench::format_speedup(0.89), "0.89x");
}

TEST(Table, FormatThroughputSpacesThousands) {
  EXPECT_EQ(bench::format_throughput(451940), "451 940");
  EXPECT_EQ(bench::format_throughput(999), "999");
  EXPECT_EQ(bench::format_throughput(1000000), "1 000 000");
}

TEST(Skew, ZipfDrawsAreInRangeSkewedAndDeterministic) {
  const bench::ZipfGen zipf(1 << 20, 0.99);
  util::Xoshiro256 rng(7);
  std::uint64_t head = 0;  // draws landing in the hottest 1% of ranks
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t r = zipf(rng);
    ASSERT_LT(r, std::uint64_t{1} << 20);
    if (r < (1u << 20) / 100) ++head;
  }
  // Zipf(0.99): the top 1% of ranks draw well over half the mass —
  // that is the skew the rebalancing bench exists for. (Uniform would
  // put ~1% here.)
  EXPECT_GT(head, kDraws / 2);
  // Deterministic per seed.
  util::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(zipf(a), zipf(b));
}

TEST(Skew, MovingHotspotConfinesAndAdvances) {
  constexpr std::int64_t kSpace = 1 << 16;
  constexpr std::int64_t kWidth = 256;
  // Pinned hotspot (period 0): 100% of draws inside [0, width).
  bench::MovingHotspot pinned(kSpace, kWidth, 0, 0, 1000);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t k = pinned(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kWidth);
  }
  // Moving hotspot: after `period` draws the window has advanced by
  // `stride` — hot draws land in the shifted window.
  bench::MovingHotspot moving(kSpace, kWidth, 1000, 4096, 1000);
  for (int i = 0; i < 1000; ++i) (void)moving(rng);  // first window
  for (int i = 0; i < 500; ++i) {
    const std::int64_t k = moving(rng);
    ASSERT_GE(k, 4096);
    ASSERT_LT(k, 4096 + kWidth);
  }
}

TEST(Table, PrintTableShape) {
  bench::SpeedupTable t;
  t.title = "Test";
  t.process_counts = {1, 4};
  t.rows.push_back({"Batch", 451940, {0.89, 1.23}});
  std::ostringstream os;
  bench::print_table(os, t);
  const std::string out = os.str();
  EXPECT_NE(out.find("Batch"), std::string::npos);
  EXPECT_NE(out.find("451 940"), std::string::npos);
  EXPECT_NE(out.find("0.89x"), std::string::npos);
  EXPECT_NE(out.find("UC 4p"), std::string::npos);
}

}  // namespace
}  // namespace pathcopy
