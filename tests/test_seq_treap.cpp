#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "persist/treap.hpp"
#include "seq/locked.hpp"
#include "seq/seq_treap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using S = seq::SeqTreap<std::int64_t, std::int64_t>;
using P = persist::Treap<std::int64_t, std::int64_t>;

TEST(SeqTreap, EmptyBasics) {
  S t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains(1));
  EXPECT_TRUE(t.check_invariants());
}

TEST(SeqTreap, InsertReportsNovelty) {
  S t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_FALSE(t.insert(5, 99));
  EXPECT_EQ(*t.find(5), 50);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SeqTreap, EraseReportsPresence) {
  S t;
  t.insert(5, 50);
  EXPECT_FALSE(t.erase(7));
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_TRUE(t.empty());
}

TEST(SeqTreap, ItemsSorted) {
  S t;
  for (const auto k : {9, 1, 8, 2, 7}) t.insert(k, k);
  const auto items = t.items();
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_EQ(items.size(), 5u);
}

TEST(SeqTreap, RankMatchesSortedPosition) {
  S t;
  for (std::int64_t i = 0; i < 64; ++i) t.insert(i * 2, i);
  EXPECT_EQ(t.rank(0), 0u);
  EXPECT_EQ(t.rank(64), 32u);
  EXPECT_EQ(t.rank(127), 64u);
}

TEST(SeqTreap, OracleStress) {
  S t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t k = rng.range(-80, 80);
    if (rng.chance(1, 2)) {
      EXPECT_EQ(t.insert(k, k), oracle.emplace(k, k).second);
    } else {
      EXPECT_EQ(t.erase(k), oracle.erase(k) > 0);
    }
    ASSERT_EQ(t.size(), oracle.size());
  }
  EXPECT_TRUE(t.check_invariants());
}

TEST(SeqTreap, SameCanonicalShapeAsPersistentTreap) {
  // Both use the same hashed priorities, so the same key set must produce
  // the same tree shape: identical heights and identical in-order keys.
  alloc::Arena a;
  S s;
  P p;
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t k = rng.range(-300, 300);
    s.insert(k, k);
    p = test::apply(a, [&](auto& b) { return p.insert(b, k, k); });
  }
  EXPECT_EQ(s.size(), p.size());
  EXPECT_EQ(s.height(), p.height());
  std::vector<std::int64_t> sk, pk;
  s.for_each([&](const std::int64_t& k, const std::int64_t&) { sk.push_back(k); });
  p.for_each([&](const std::int64_t& k, const std::int64_t&) { pk.push_back(k); });
  EXPECT_EQ(sk, pk);
}

TEST(SeqTreap, MoveTransfersOwnership) {
  S a;
  a.insert(1, 10);
  S b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.contains(1));
}

TEST(SeqTreap, ClearEmpties) {
  S t;
  for (std::int64_t i = 0; i < 100; ++i) t.insert(i, i);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.insert(5, 5));
}

TEST(Locked, SerializesAccess) {
  seq::Locked<S> locked;
  locked.with([](S& t) { t.insert(1, 10); });
  const auto size = locked.with_read([](const S& t) { return t.size(); });
  EXPECT_EQ(size, 1u);
}

TEST(Locked, ConcurrentInsertsAllLand) {
  seq::Locked<S> locked;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&locked, w] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        locked.with([&](S& t) { t.insert(w * kPerThread + i, i); });
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(locked.with_read([](const S& t) { return t.size(); }),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(locked.with_read([](const S& t) { return t.check_invariants(); }));
}

}  // namespace
}  // namespace pathcopy
