// Replacement-policy caches: per-policy behavioral contracts, shared
// interface properties, and the policies' characteristic differences on
// canonical access patterns.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "model/eviction.hpp"
#include "model/lru_cache.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using model::ClockCache;
using model::FifoCache;
using model::LruCache;
using model::RandomCache;

// Interface-level properties every policy must satisfy.
template <class Cache>
void run_common_contract(Cache& c, std::size_t capacity) {
  // Size never exceeds capacity.
  for (std::uint64_t k = 0; k < 3 * capacity; ++k) {
    c.access(k);
    ASSERT_LE(c.size(), capacity);
  }
  // A just-filled key is resident.
  c.fill(999'999);
  EXPECT_TRUE(c.contains(999'999));
  // Re-access of a resident key is a hit and does not grow the cache.
  const auto hits_before = c.hits();
  const auto size_before = c.size();
  EXPECT_TRUE(c.access(999'999));
  EXPECT_EQ(c.hits(), hits_before + 1);
  EXPECT_EQ(c.size(), size_before);
  // Counters reset.
  c.reset_counters();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Eviction, CommonContractLru) {
  LruCache c(64);
  run_common_contract(c, 64);
}
TEST(Eviction, CommonContractFifo) {
  FifoCache c(64);
  run_common_contract(c, 64);
}
TEST(Eviction, CommonContractClock) {
  ClockCache c(64);
  run_common_contract(c, 64);
}
TEST(Eviction, CommonContractRandom) {
  RandomCache c(64, 7);
  run_common_contract(c, 64);
}

TEST(Eviction, FifoIgnoresRecency) {
  FifoCache c(2);
  c.access(1);
  c.access(2);
  c.access(1);      // hit, but does NOT refresh FIFO position
  c.access(3);      // evicts 1 (oldest fill), not 2
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Eviction, LruRespectsRecency) {
  LruCache c(2);
  c.access(1);
  c.access(2);
  c.access(1);      // refreshes 1
  c.access(3);      // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Eviction, ClockGivesSecondChance) {
  ClockCache c(3);
  c.access(1);
  c.access(2);
  c.access(3);
  c.access(1);  // sets 1's reference bit (all bits currently set)
  // Insert 4: the sweep clears 1..3's bits, wraps, and evicts slot 0 (1)?
  // No — first pass clears all referenced bits, second pass evicts the
  // first now-unreferenced slot, which is 1's. But 1 was *referenced*, so
  // it survives only relative to equally-referenced peers. The contract
  // worth pinning: after the insert, exactly one of {1,2,3} is gone and 4
  // is resident.
  c.access(4);
  EXPECT_TRUE(c.contains(4));
  const int survivors =
      int(c.contains(1)) + int(c.contains(2)) + int(c.contains(3));
  EXPECT_EQ(survivors, 2);
  // And the second-chance property proper: a freshly referenced line
  // survives a sweep in which some other line is unreferenced.
  ClockCache d(2);
  d.access(10);
  d.access(20);
  // Sweep once so both lose their initial reference bits.
  d.access(30);  // evicts one of them, say X; now {30, Y} with Y cleared
  d.access(30);  // re-reference 30
  d.access(40);  // must evict Y, never the referenced 30
  EXPECT_TRUE(d.contains(30));
  EXPECT_TRUE(d.contains(40));
}

TEST(Eviction, RandomIsDeterministicPerSeed) {
  RandomCache a(8, 42);
  RandomCache b(8, 42);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t k = rng.below(64);
    ASSERT_EQ(a.access(k), b.access(k));
  }
  EXPECT_EQ(a.hits(), b.hits());
}

TEST(Eviction, LoopOneOverCapacityThrashesLruNotRandom) {
  // The canonical adversarial pattern: cyclic sweep over capacity+1 keys.
  // LRU evicts exactly the next key needed — zero hits in steady state.
  // Random replacement keeps most of the working set — many hits.
  constexpr std::size_t kCap = 64;
  LruCache lru(kCap);
  RandomCache rnd(kCap, 9);
  for (int round = 0; round < 200; ++round) {
    for (std::uint64_t k = 0; k <= kCap; ++k) {
      lru.access(k);
      rnd.access(k);
    }
  }
  EXPECT_EQ(lru.hits(), 0u);
  EXPECT_GT(rnd.hits(), 1000u);
}

TEST(Eviction, HotSetStaysResidentUnderAllPolicies) {
  // The property the paper's effect actually needs: a small, repeatedly
  // touched working set (the retry's path) survives interleaved cold
  // traffic under every reasonable policy.
  constexpr std::size_t kCap = 256;
  constexpr std::uint64_t kHot = 16;
  LruCache lru(kCap);
  FifoCache fifo(kCap);
  ClockCache clock(kCap);
  RandomCache rnd(kCap, 5);
  util::Xoshiro256 rng(11);
  auto run = [&](auto& cache) {
    cache.reset_counters();
    std::uint64_t hot_hits = 0, hot_touches = 0;
    for (int i = 0; i < 20000; ++i) {
      // 4 hot touches : 1 cold touch — cold keys never repeat.
      for (std::uint64_t h = 0; h < 4; ++h) {
        ++hot_touches;
        hot_hits += cache.access(rng.below(kHot)) ? 1 : 0;
      }
      cache.access(1'000'000 + static_cast<std::uint64_t>(i));
    }
    return static_cast<double>(hot_hits) / static_cast<double>(hot_touches);
  };
  EXPECT_GT(run(lru), 0.95);
  EXPECT_GT(run(clock), 0.95);
  EXPECT_GT(run(rnd), 0.90);
  // FIFO is the weakest (recency-blind) but the hot set still mostly
  // survives at this cap/working-set ratio.
  EXPECT_GT(run(fifo), 0.75);
}

}  // namespace
}  // namespace pathcopy
