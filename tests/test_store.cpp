// Store layer: routers, the ShardedMap facade, and the cross-shard batch
// splitter — driven through the UniversalConstruction concept over both
// UC backends (plain Atom and CombiningAtom) × both routers × two
// structures (treap, AVL).
//
// The strongest checks are the oracle equivalences: a sharded map must be
// observationally identical to a std::set (point ops) and to a single
// unsharded UC fed the same request stream (batch split/reassembly) —
// same per-op results, same ordered contents.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <limits>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "core/universal.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Avl = persist::AvlTree<std::int64_t, std::int64_t>;
using Epoch = reclaim::EpochReclaimer;
using MA = alloc::MallocAlloc;
using PlainUc = core::Atom<T, Epoch, MA>;
using CombUc = core::CombiningAtom<T, Epoch, MA>;
using PlainAvlUc = core::Atom<Avl, Epoch, MA>;
using CombAvlUc = core::CombiningAtom<Avl, Epoch, MA>;
using CombBtreeUc =
    core::CombiningAtom<persist::BTree<std::int64_t, std::int64_t, 8>, Epoch,
                        MA>;
using CombRbtUc =
    core::CombiningAtom<persist::RbTree<std::int64_t, std::int64_t>, Epoch,
                        MA>;
using CombWbtUc =
    core::CombiningAtom<persist::WbTree<std::int64_t, std::int64_t>, Epoch,
                        MA>;
using CombEbstUc =
    core::CombiningAtom<persist::ExternalBst<std::int64_t, std::int64_t>,
                        Epoch, MA>;
using HashR = store::HashRouter<std::int64_t>;
using RangeR = store::RangeRouter<std::int64_t>;

// Both backends (and every structure in the sorted-batch matrix under
// them) model the concept the store layer is written against.
static_assert(core::UniversalConstruction<PlainUc>);
static_assert(core::UniversalConstruction<CombUc>);
static_assert(core::UniversalConstruction<PlainAvlUc>);
static_assert(core::UniversalConstruction<CombAvlUc>);
static_assert(core::UniversalConstruction<CombBtreeUc>);
static_assert(core::UniversalConstruction<CombRbtUc>);
static_assert(core::UniversalConstruction<CombWbtUc>);
static_assert(core::UniversalConstruction<CombEbstUc>);
static_assert(store::RouterFor<HashR, std::int64_t>);
static_assert(store::RouterFor<RangeR, std::int64_t>);

// ----- router properties -----

TEST(Router, HashEveryKeyMapsToExactlyOneShardDeterministically) {
  HashR r;
  for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
    for (std::int64_t k = -1000; k <= 1000; ++k) {
      const std::size_t s = r(k, shards);
      ASSERT_LT(s, shards);
      ASSERT_EQ(s, r(k, shards));  // pure function of (key, shards)
    }
  }
}

TEST(Router, HashSpreadsContiguousKeys) {
  HashR r;
  constexpr std::size_t kShards = 8;
  std::array<std::size_t, kShards> hits{};
  for (std::int64_t k = 0; k < 4096; ++k) ++hits[r(k, kShards)];
  for (std::size_t s = 0; s < kShards; ++s) {
    // 4096 keys over 8 shards: each shard should see a healthy share.
    EXPECT_GT(hits[s], 4096u / kShards / 4) << "shard " << s;
  }
}

TEST(Router, RangeIsMonotoneAndCoversEveryShard) {
  const auto r = RangeR::uniform(0, 1000, 4);
  EXPECT_TRUE(r.compatible(4));
  EXPECT_FALSE(r.compatible(3));
  std::size_t prev = 0;
  std::array<bool, 4> hit{};
  for (std::int64_t k = -50; k < 1050; ++k) {
    const std::size_t s = r(k, 4);
    ASSERT_LT(s, 4u);
    ASSERT_GE(s, prev) << "range router must be monotone at key " << k;
    prev = s;
    hit[s] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h);
}

TEST(Router, RangeUniformSplitsFullWidthRangesWithoutOverflow) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const auto r = RangeR::uniform(kMin, kMax, 8);
  EXPECT_TRUE(r.compatible(8));
  EXPECT_EQ(r(kMin, 8), 0u);
  EXPECT_EQ(r(0, 8), 4u);  // midpoint lands in the middle shard
  EXPECT_EQ(r(kMax - 1, 8), 7u);
  std::size_t prev = 0;
  const std::array<std::int64_t, 7> probes{
      kMin, kMin / 2, -1000000007, 0, 1000000007, kMax / 2, kMax};
  for (const std::int64_t k : probes) {
    const std::size_t s = r(k, 8);
    ASSERT_GE(s, prev);
    prev = s;
  }
}

// Fitted split points must satisfy every invariant the uniform ones do:
// exactly one shard per key, monotone half-open coverage — plus the
// fitting property (each shard draws ~an equal share of the sampled
// load) and graceful degeneration under heavy duplication.
TEST(Router, FromSamplesFitsQuantilesAndKeepsRouterInvariants) {
  util::Xoshiro256 rng(99);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    // A skewed sample: half the mass in [0, 100), the rest spread wide.
    std::vector<std::int64_t> sample;
    for (int i = 0; i < 4096; ++i) {
      sample.push_back(rng.chance(1, 2) ? rng.range(0, 99)
                                        : rng.range(100, 1 << 20));
    }
    std::sort(sample.begin(), sample.end());
    const auto r =
        RangeR::from_samples(std::span<const std::int64_t>(sample), shards);
    ASSERT_TRUE(r.compatible(shards));
    ASSERT_EQ(r.bounds().size(), shards - 1);
    // Strictly increasing bounds, monotone routing, full coverage.
    for (std::size_t i = 1; i < r.bounds().size(); ++i) {
      ASSERT_LT(r.bounds()[i - 1], r.bounds()[i]);
    }
    std::size_t prev = 0;
    for (std::int64_t k = -10; k < (1 << 20) + 10; k += 257) {
      const std::size_t s = r(k, shards);
      ASSERT_LT(s, shards);
      ASSERT_GE(s, prev);
      prev = s;
    }
    // Every shard is reachable: bound i-1 itself routes to shard i
    // (half-open intervals), and anything below the first bound to 0.
    ASSERT_EQ(r(r.bounds().front() - 1, shards), 0u);
    for (std::size_t s = 1; s < shards; ++s) {
      ASSERT_EQ(r(r.bounds()[s - 1], shards), s);
    }
    // The fit: every shard's share of the *sample* is near 1/shards.
    std::vector<std::size_t> load(shards, 0);
    for (const std::int64_t k : sample) ++load[r(k, shards)];
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GE(load[s] * shards * 2, sample.size())
          << "shard " << s << " got far less than half its fair share";
      EXPECT_LE(load[s] * shards, 2 * sample.size())
          << "shard " << s << " got more than twice its fair share";
    }
  }
}

TEST(Router, FromSamplesSurvivesHeavyDuplication) {
  // One heavy hitter spanning every quantile: bounds must still be
  // strictly increasing (bumped past each other), and routing stays a
  // valid partition even though most shards end up near-empty.
  std::vector<std::int64_t> sample(1000, 42);
  sample.push_back(1000);
  std::sort(sample.begin(), sample.end());
  const auto r = RangeR::from_samples(std::span<const std::int64_t>(sample), 4);
  ASSERT_TRUE(r.compatible(4));
  for (std::size_t i = 1; i < r.bounds().size(); ++i) {
    ASSERT_LT(r.bounds()[i - 1], r.bounds()[i]);
  }
  std::size_t prev = 0;
  for (std::int64_t k = 0; k < 2000; ++k) {
    const std::size_t s = r(k, 4);
    ASSERT_LT(s, 4u);
    ASSERT_GE(s, prev);
    prev = s;
  }
}

TEST(Router, FromSamplesSingleShardAndTinySamples) {
  const std::vector<std::int64_t> one{7};
  const auto r1 =
      RangeR::from_samples(std::span<const std::int64_t>(one), 1);
  EXPECT_TRUE(r1.compatible(1));
  EXPECT_EQ(r1(std::int64_t{-100}, 1), 0u);
  // Fewer distinct samples than shards: padding keeps the partition
  // valid.
  const std::vector<std::int64_t> tiny{5, 5, 5};
  const auto r4 =
      RangeR::from_samples(std::span<const std::int64_t>(tiny), 4);
  EXPECT_TRUE(r4.compatible(4));
  std::size_t prev = 0;
  for (std::int64_t k = 0; k < 20; ++k) {
    const std::size_t s = r4(k, 4);
    ASSERT_GE(s, prev);
    prev = s;
  }
}

TEST(Router, RangeBoundsAreHalfOpen) {
  const RangeR r(std::vector<std::int64_t>{10, 20});
  EXPECT_EQ(r(9, 3), 0u);
  EXPECT_EQ(r(10, 3), 1u);  // shard i owns [bounds[i-1], bounds[i])
  EXPECT_EQ(r(19, 3), 1u);
  EXPECT_EQ(r(20, 3), 2u);
  EXPECT_EQ(r(1000, 3), 2u);
}

// ----- typed store tests: backend × router × structure -----

// Key window the range routers split; tests keep keys inside it only
// where shard coverage matters (routers handle out-of-window keys too).
constexpr std::int64_t kLo = -64;
constexpr std::int64_t kHi = 1088;

template <class UcT, class RouterT>
struct Combo {
  using Uc = UcT;
  using Router = RouterT;
  using Map = store::ShardedMap<Uc, Router>;

  static Router make_router(std::size_t shards) {
    if constexpr (Router::kOrderPreserving) {
      return shards == 1 ? Router{} : Router::uniform(kLo, kHi, shards);
    } else {
      (void)shards;
      return Router{};
    }
  }
};

template <class C>
class StoreTyped : public ::testing::Test {};

using Combos =
    ::testing::Types<Combo<PlainUc, HashR>, Combo<PlainUc, RangeR>,
                     Combo<CombUc, HashR>, Combo<CombUc, RangeR>,
                     Combo<PlainAvlUc, RangeR>, Combo<CombAvlUc, HashR>,
                     Combo<CombBtreeUc, RangeR>, Combo<CombRbtUc, HashR>,
                     Combo<CombWbtUc, RangeR>, Combo<CombEbstUc, HashR>>;
TYPED_TEST_SUITE(StoreTyped, Combos);

TYPED_TEST(StoreTyped, PointOpsMatchSetOracle) {
  MA a;
  {
    typename TypeParam::Map map(4, a, TypeParam::make_router(4));
    typename TypeParam::Map::Session session(map, a);
    std::set<std::int64_t> oracle;
    util::Xoshiro256 rng(42);
    for (int i = 0; i < 3000; ++i) {
      const std::int64_t k = rng.range(0, 500);
      if (rng.chance(1, 2)) {
        ASSERT_EQ(session.insert(k, k * 3), oracle.insert(k).second);
      } else {
        ASSERT_EQ(session.erase(k), oracle.erase(k) > 0);
      }
    }
    ASSERT_EQ(session.size(), oracle.size());
    for (const std::int64_t k : {std::int64_t{0}, std::int64_t{250}}) {
      ASSERT_EQ(session.contains(k), oracle.contains(k));
      const auto v = session.find(k);
      ASSERT_EQ(v.has_value(), oracle.contains(k));
      if (v) {
        ASSERT_EQ(*v, k * 3);
      }
    }
    // Ordered iteration composed across shards matches the sorted oracle.
    std::vector<std::int64_t> expect(oracle.begin(), oracle.end());
    std::vector<std::int64_t> got;
    session.for_each_ordered(
        [&](const std::int64_t& k, const std::int64_t& v) {
          got.push_back(k);
          ASSERT_EQ(v, k * 3);
        });
    ASSERT_EQ(got, expect);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(StoreTyped, BatchSplitMatchesSingleAtomOracle) {
  using Uc = typename TypeParam::Uc;
  using Req = typename Uc::BatchRequest;
  using K = typename Uc::OpKind;
  MA a1, a2;
  {
    typename TypeParam::Map map(5, a1, TypeParam::make_router(5));
    typename TypeParam::Map::Session session(map, a1);
    Epoch smr;
    Uc oracle(smr, a2);
    typename Uc::Ctx octx(smr, a2);

    util::Xoshiro256 rng(7);
    for (int iter = 0; iter < 25; ++iter) {
      const int n = 1 + static_cast<int>(rng.range(0, 39));
      std::vector<Req> reqs;
      for (int i = 0; i < n; ++i) {
        const std::int64_t k = rng.range(0, 80);  // dense: same-key chains
        if (rng.chance(1, 2)) {
          reqs.push_back(Req{K::kInsert, k, k + 1000 * iter + i});
        } else {
          reqs.push_back(Req{K::kErase, k, std::nullopt});
        }
      }
      bool got[48], want[48];
      session.execute_batch(reqs, std::span<bool>(got, reqs.size()));
      oracle.execute_batch(octx, reqs, std::span<bool>(want, reqs.size()));
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "iter " << iter << " op " << i;
      }
    }
    const auto got_items = session.items();
    const auto want_items =
        oracle.read(octx, [](auto snapshot) { return snapshot.items(); });
    ASSERT_EQ(got_items, want_items);
  }
  EXPECT_EQ(a1.stats().live_blocks(), 0u);
  EXPECT_EQ(a2.stats().live_blocks(), 0u);
}

TYPED_TEST(StoreTyped, SeedSortedPartitionsAcrossShards) {
  MA a;
  {
    typename TypeParam::Map map(4, a, TypeParam::make_router(4));
    typename TypeParam::Map::Session session(map, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < 1024; k += 2) items.emplace_back(k, k * 7);
    session.seed_sorted(items.begin(), items.end());
    ASSERT_EQ(session.size(), items.size());
    ASSERT_EQ(session.items(), items);
    // The seeded map stays updatable through the same session.
    EXPECT_TRUE(session.insert(1, 7));
    EXPECT_FALSE(session.insert(0, 99));  // present from the seed
    EXPECT_TRUE(session.erase(2));
    ASSERT_EQ(session.size(), items.size());  // +1 insert, -1 erase
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(StoreTyped, ContendedNetEffectReconcilesAcrossShards) {
  MA a;
  constexpr int kThreads = 4;
  constexpr int kKeys = 64;
  {
    typename TypeParam::Map map(4, a, TypeParam::make_router(4));
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    store::ShardStatsBoard board(4);
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename TypeParam::Map::Session session(map, a);
        util::Xoshiro256 rng(w + 17);
        for (int i = 0; i < 2500; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          if (rng.chance(1, 2)) {
            if (session.insert(k, k)) net[k].fetch_add(1);
          } else {
            if (session.erase(k)) net[k].fetch_sub(1);
          }
        }
        session.fold_into(board);
      });
    }
    for (auto& w : workers) w.join();
    typename TypeParam::Map::Session session(map, a);
    std::size_t present_count = 0;
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      ASSERT_EQ(session.contains(k), n == 1) << "key " << k;
      present_count += static_cast<std::size_t>(n);
    }
    ASSERT_EQ(session.size(), present_count);
    // The board saw every install the workers performed: per-shard rows
    // sum to the total, and something actually ran.
    core::OpStats sum;
    for (std::size_t s = 0; s < board.shards(); ++s) sum += board.shard(s);
    EXPECT_EQ(sum.updates, board.total().updates);
    EXPECT_EQ(sum.attempts, board.total().attempts);
    EXPECT_GT(board.total().attempts, 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(StoreTyped, StatsRollupsMatchSessionCounters) {
  MA a;
  {
    typename TypeParam::Map map(3, a, TypeParam::make_router(3));
    typename TypeParam::Map::Session session(map, a);
    for (std::int64_t k = 0; k < 200; ++k) session.insert(k, k);
    for (std::int64_t k = 0; k < 200; k += 2) session.erase(k);
    const core::OpStats total = session.stats();
    core::OpStats by_shard;
    for (std::size_t s = 0; s < 3; ++s) by_shard += session.shard_stats(s);
    EXPECT_EQ(by_shard.updates, total.updates);
    EXPECT_EQ(by_shard.attempts, total.attempts);
    EXPECT_EQ(by_shard.reads, total.reads);
    store::ShardStatsBoard board(3);
    board.add_session(session);
    EXPECT_EQ(board.total().updates, total.updates);
    // Every op completed exactly once, whichever backend ran it.
    EXPECT_EQ(total.updates + total.noop_updates + total.helped_completions,
              300u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// A single-shard map over either backend behaves exactly like the bare
// UC — the degenerate configuration the facade must not tax.
TYPED_TEST(StoreTyped, SingleShardDegeneratesToBareUc) {
  MA a;
  {
    typename TypeParam::Map map(1, a, TypeParam::make_router(1));
    typename TypeParam::Map::Session session(map, a);
    EXPECT_TRUE(session.insert(5, 50));
    EXPECT_FALSE(session.insert(5, 51));
    EXPECT_EQ(session.find(5), std::optional<std::int64_t>(50));
    EXPECT_TRUE(session.erase(5));
    EXPECT_EQ(session.size(), 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
