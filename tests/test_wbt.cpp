#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using W = persist::WbTree<std::int64_t, std::int64_t>;

template <class Alloc>
W insert_all(Alloc& a, W t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

TEST(Wbt, EmptyBasics) {
  W t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Wbt, AscendingAndDescendingStayBalanced) {
  alloc::Arena a;
  std::vector<std::int64_t> up, down;
  for (std::int64_t i = 0; i < 2048; ++i) {
    up.push_back(i);
    down.push_back(2048 - i);
  }
  W tu = insert_all(a, W{}, up);
  W td = insert_all(a, W{}, down);
  EXPECT_TRUE(tu.check_invariants());
  EXPECT_TRUE(td.check_invariants());
  // BB[3] height bound is c * log2 n with small c; 2 log2(2048) = 22.
  EXPECT_LE(tu.height(), 22u);
  EXPECT_LE(td.height(), 22u);
}

TEST(Wbt, DuplicateInsertAndMissingEraseAreNoOps) {
  alloc::Arena a;
  W t = insert_all(a, W{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.insert(b, 2, 0).root_ptr(), t.root_ptr());
  EXPECT_EQ(t.erase(b, 9).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(Wbt, RankKthMinMax) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 128; ++i) keys.push_back(i * 3);
  W t = insert_all(a, W{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(t.kth(i)->key, keys[i]);
    ASSERT_EQ(t.rank(keys[i]), i);
  }
  EXPECT_EQ(t.min_node()->key, 0);
  EXPECT_EQ(t.max_node()->key, 127 * 3);
  EXPECT_EQ(t.count_range(3, 30), 9u);
}

TEST(Wbt, InsertOrAssign) {
  alloc::Arena a;
  W t = insert_all(a, W{}, {1, 2, 3});
  W t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 99); });
  EXPECT_EQ(*t2.find(2), 99);
  EXPECT_EQ(*t.find(2), 20);
  EXPECT_TRUE(t2.check_invariants());
}

TEST(Wbt, EraseEverythingKeepsBalance) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 512; ++i) keys.push_back(i);
  W t = insert_all(a, W{}, keys);
  util::Xoshiro256 rng(3);
  std::vector<std::int64_t> order = keys;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (const auto k : order) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_TRUE(t.empty());
}

TEST(Wbt, PersistenceAndSharing) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 1024; ++i) keys.push_back(i);
  W v1 = insert_all(a, W{}, keys);
  core::Builder<alloc::Arena> b(a);
  W v2 = v1.insert(b, 99999, 0);
  b.seal();
  (void)b.commit();
  EXPECT_EQ(v1.size(), 1024u);
  EXPECT_EQ(v2.size(), 1025u);
  EXPECT_FALSE(v1.contains(99999));
  EXPECT_GE(W::shared_nodes(v1, v2), v1.size() - 30);
}

TEST(Wbt, OracleChurn) {
  alloc::Arena a;
  W t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(51);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t k = rng.range(-70, 70);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 250 == 0) ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_TRUE(t.check_invariants());
  const auto items = t.items();
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(Wbt, HeightTracksLogN) {
  alloc::Arena a;
  util::Xoshiro256 rng(8);
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 8192; ++i) keys.push_back(static_cast<std::int64_t>(rng()));
  W t = insert_all(a, W{}, keys);
  EXPECT_TRUE(t.check_invariants());
  // BB[3] guarantees height <= log_{3/2}... in practice well under 2 log2 n.
  EXPECT_LE(t.height(), 2.0 * std::log2(8192.0) + 2);
}

TEST(Wbt, WorksUnderAtomConcurrently) {
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<W, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        core::Atom<W, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
        for (std::int64_t i = 0; i < 1000; ++i) {
          const std::int64_t key = w * 1000 + i;
          atom.update(ctx, [key](W t, auto& b) { return t.insert(b, key, key); });
        }
      });
    }
    for (auto& t : workers) t.join();
    core::Atom<W, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
    EXPECT_EQ(atom.read(ctx, [](W t) { return t.size(); }), 4000u);
    EXPECT_TRUE(atom.read(ctx, [](W t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Wbt, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  W t;
  for (std::int64_t k = 0; k < 100; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 100u);
  W::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- from_sorted + apply_sorted_batch (shared oracle harness) -----

TEST(Wbt, FromSortedRoundTrip) { test::from_sorted_roundtrip<W>(); }

TEST(WbtBatch, NoopBatchesShareRoot) {
  test::batch_oracle_noop_shares_root<W>();
}

TEST(WbtBatch, OutcomesAndContents) { test::batch_oracle_outcomes<W>(); }

TEST(WbtBatch, RandomBatchesMatchSequentialApplication) {
  test::batch_oracle_random<W>(7171, 40, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<W>(7172, 20, test::BatchKeyPattern::kClustered);
}

// Weight-balance audit after a reshaping batch on a big tree: the join
// unwind must restore the Delta bound at every level, not just produce
// the right contents.
TEST(WbtBatch, BigBatchKeepsWeightBalance) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t k = 0; k < 4096; ++k) items.emplace_back(k * 2, k);
  W t = test::apply(
      a, [&](auto& b) { return W::from_sorted(b, items.begin(), items.end()); });
  // One clustered run of inserts (odd keys in a hot range) plus a run of
  // erases: the batch recursion reshapes two whole subranges.
  std::vector<W::BatchOp> ops;
  for (std::int64_t k = 1000; k < 1400; k += 2) {
    ops.push_back(W::BatchOp{W::BatchOpKind::kInsert, k + 1, k});
  }
  for (std::int64_t k = 6000; k < 6800; k += 2) {
    ops.push_back(W::BatchOp{W::BatchOpKind::kErase, k, std::nullopt});
  }
  std::vector<W::BatchOutcome> out(ops.size());
  W t2 = test::apply(
      a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });
  EXPECT_EQ(t2.size(), 4096u + 200 - 400);
  EXPECT_TRUE(t2.check_invariants());
  EXPECT_TRUE(t.check_invariants());  // old version untouched
}

// PR 10 range port: subtree-pruned in-order walk vs a std::set oracle,
// with count_range cross-checks and bounded-scan prefix semantics.
TEST(Wbt, ForEachRangeAndScanMatchOracle) {
  test::range_oracle_random<W>(4101);
}

// Sorted read batch: one descent-sharing sweep must answer exactly like
// per-key find(), with consistent savings accounting.
TEST(Wbt, SortedReadBatchMatchesPerKeyFind) {
  test::read_batch_oracle_random<W>(4111, 30, test::BatchKeyPattern::kUniform);
  test::read_batch_oracle_random<W>(4112, 20,
                                    test::BatchKeyPattern::kClustered);
}

}  // namespace
}  // namespace pathcopy
