#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/btree.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::BTree<std::int64_t, std::int64_t, 8>;

template <class Tree, class Alloc>
Tree insert_all(Alloc& al, Tree t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(al, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

std::vector<std::int64_t> iota_keys(std::int64_t n) {
  std::vector<std::int64_t> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) keys.push_back(i);
  return keys;
}

TEST(Btree, EmptyBasics) {
  T t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.min_key(), nullptr);
  EXPECT_EQ(t.max_key(), nullptr);
  EXPECT_EQ(t.kth_key(0), nullptr);
}

TEST(Btree, SingleLeafLifecycle) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {5, 3, 9});
  EXPECT_EQ(t.height(), 1u);  // still one leaf at fanout 8
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(*t.find(3), 30);
  EXPECT_EQ(*t.min_key(), 3);
  EXPECT_EQ(*t.max_key(), 9);
}

TEST(Btree, LeafSplitCreatesRoot) {
  alloc::Arena a;
  T t = insert_all(a, T{}, iota_keys(9));  // capacity 8 → split
  EXPECT_EQ(t.height(), 2u);
  EXPECT_TRUE(t.check_invariants());
  for (std::int64_t k = 0; k < 9; ++k) ASSERT_TRUE(t.contains(k));
}

TEST(Btree, AscendingInsertKeepsInvariants) {
  alloc::Arena a;
  T t = insert_all(a, T{}, iota_keys(2048));
  EXPECT_EQ(t.size(), 2048u);
  EXPECT_TRUE(t.check_invariants());
  // Fanout-8 height bound: log_4(2048) ≈ 5.5 plus root slack.
  EXPECT_LE(t.height(), 7u);
}

TEST(Btree, DescendingInsertKeepsInvariants) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 2048; i > 0; --i) keys.push_back(i);
  T t = insert_all(a, T{}, keys);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 2048u);
}

TEST(Btree, DuplicateInsertReturnsSameRoot) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.insert(b, 2, 0).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(Btree, EraseAbsentReturnsSameRoot) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.erase(b, 9).root_ptr(), t.root_ptr());
  b.rollback();
}

TEST(Btree, InsertOrAssign) {
  alloc::Arena a;
  T t = insert_all(a, T{}, iota_keys(100));
  T t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 50, -1); });
  EXPECT_EQ(*t2.find(50), -1);
  EXPECT_EQ(*t.find(50), 500);
  EXPECT_EQ(t2.size(), 100u);
  EXPECT_TRUE(t2.check_invariants());
}

TEST(Btree, EraseTriggersBorrowAndMerge) {
  alloc::Arena a;
  // Build enough structure for internal rebalancing, then erase a block
  // of adjacent keys — adjacency maximizes borrow/merge traffic.
  T t = insert_all(a, T{}, iota_keys(512));
  for (std::int64_t k = 100; k < 400; ++k) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants()) << "after erasing " << k;
  }
  EXPECT_EQ(t.size(), 212u);
  for (std::int64_t k = 0; k < 100; ++k) ASSERT_TRUE(t.contains(k));
  for (std::int64_t k = 100; k < 400; ++k) ASSERT_FALSE(t.contains(k));
  for (std::int64_t k = 400; k < 512; ++k) ASSERT_TRUE(t.contains(k));
}

TEST(Btree, EraseEverythingShrinksHeightToZero) {
  alloc::Arena a;
  const auto keys = iota_keys(512);
  T t = insert_all(a, T{}, keys);
  util::Xoshiro256 rng(5);
  std::vector<std::int64_t> order = keys;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::size_t last_height = t.height();
  for (const auto k : order) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants()) << "after erasing " << k;
    ASSERT_LE(t.height(), last_height);
    last_height = t.height();
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 0u);
}

TEST(Btree, RankAndKth) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 300; ++i) keys.push_back(i * 3);
  T t = insert_all(a, T{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(t.kth_key(i), nullptr);
    EXPECT_EQ(*t.kth_key(i), keys[i]);
    EXPECT_EQ(t.rank(keys[i]), i);
    EXPECT_EQ(t.rank(keys[i] + 1), i + 1);  // between stored keys
  }
  EXPECT_EQ(t.kth_key(keys.size()), nullptr);
}

TEST(Btree, FloorCeilingCountRange) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30, 40});
  EXPECT_EQ(*t.floor_key(25), 20);
  EXPECT_EQ(*t.floor_key(20), 20);
  EXPECT_EQ(t.floor_key(5), nullptr);
  EXPECT_EQ(*t.ceiling_key(25), 30);
  EXPECT_EQ(*t.ceiling_key(30), 30);
  EXPECT_EQ(t.ceiling_key(45), nullptr);
  EXPECT_EQ(t.count_range(10, 40), 3u);
  EXPECT_EQ(t.count_range(11, 41), 3u);
  EXPECT_EQ(t.count_range(40, 10), 0u);
}

TEST(Btree, ForEachRangeMatchesFilteredScan) {
  alloc::Arena a;
  util::Xoshiro256 rng(9);
  std::set<std::int64_t> oracle;
  T t;
  for (int i = 0; i < 900; ++i) {
    const std::int64_t k = rng.range(-700, 700);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
    oracle.insert(k);
  }
  // Random [lo, hi) windows against the oracle's half-open slice; the
  // pruned descent must both skip cold subtrees and visit in order.
  // Windows that straddle separator keys are the interesting cases, so
  // bounds are drawn from the stored-key range.
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t lo = rng.range(-800, 800);
    const std::int64_t hi = rng.range(-800, 800);
    std::vector<std::int64_t> got;
    t.for_each_range(lo, hi, [&](const std::int64_t& k, const std::int64_t& v) {
      EXPECT_EQ(v, k * 10);
      got.push_back(k);
    });
    std::vector<std::int64_t> want;
    for (auto it = oracle.lower_bound(lo); it != oracle.end() && *it < hi;
         ++it) {
      want.push_back(*it);
    }
    ASSERT_EQ(got, want) << "[" << lo << ", " << hi << ")";
    EXPECT_EQ(t.count_range(lo, hi), want.size());
  }
  // Boundary semantics: lo inclusive, hi exclusive — also when the edge
  // sits exactly on a separator key (an internal node's routing key).
  std::size_t hits = 0;
  t.for_each_range(5, 5, [&](auto&, auto&) { ++hits; });
  EXPECT_EQ(hits, 0u);
}

TEST(Btree, ItemsAreSorted) {
  alloc::Arena a;
  util::Xoshiro256 rng(3);
  T t;
  for (int i = 0; i < 500; ++i) {
    t = test::apply(
        a, [&](auto& b) { return t.insert(b, rng.range(-1000, 1000), 0); });
  }
  const auto items = t.items();
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_EQ(items.size(), t.size());
}

TEST(Btree, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  T v1 = insert_all(a, T{}, iota_keys(200));
  core::Builder<alloc::Arena> b(a);
  T v2 = v1.erase(b, 100);
  b.seal();
  (void)b.commit();
  EXPECT_TRUE(v1.contains(100));
  EXPECT_FALSE(v2.contains(100));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
  EXPECT_EQ(v1.size(), 200u);
  EXPECT_EQ(v2.size(), 199u);
}

TEST(Btree, SharingAfterInsertIsPathOnly) {
  alloc::Arena a;
  T v1 = insert_all(a, T{}, iota_keys(4096));
  core::Builder<alloc::Arena> b(a);
  T v2 = v1.insert(b, 999999, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = T::shared_nodes(v1, v2);
  // Only the copied path's entries (≤ height · fanout) can be unshared.
  EXPECT_GE(shared, v1.size() - 64);
}

TEST(Btree, RandomOpsAgainstOracle) {
  alloc::Arena a;
  T t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 6000; ++i) {
    const std::int64_t k = rng.range(-150, 150);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 250 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  EXPECT_TRUE(t.check_invariants());
  const auto items = t.items();
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(Btree, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  T t;
  for (std::int64_t k = 0; k < 300; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_GT(a.stats().live_blocks(), 0u);
  T::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// Same battery at other fanouts — template sweep, including the minimum
// legal fanout 3 (every split/merge boundary case fires constantly).
template <unsigned F>
void run_fanout_battery() {
  using TF = persist::BTree<std::int64_t, std::int64_t, F>;
  alloc::Arena a;
  TF t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(41 + F);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = rng.range(-120, 120);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 2); });
      oracle.emplace(k, k * 2);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 200 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  ASSERT_TRUE(t.check_invariants());
  for (const auto& [k, v] : oracle) {
    ASSERT_NE(t.find(k), nullptr);
    ASSERT_EQ(*t.find(k), v);
  }
}

TEST(BtreeFanouts, F3) { run_fanout_battery<3>(); }
TEST(BtreeFanouts, F4) { run_fanout_battery<4>(); }
TEST(BtreeFanouts, F16) { run_fanout_battery<16>(); }
TEST(BtreeFanouts, F64) { run_fanout_battery<64>(); }

// ----- from_sorted + apply_sorted_batch (shared oracle harness) -----

TEST(Btree, FromSortedRoundTrip) { test::from_sorted_roundtrip<T>(); }

// Balanced leaf/internal packing must respect the occupancy bounds at
// every size (check_invariants audits [min, max] fill and uniform leaf
// depth) — and at the tightest legal fanout, where the margins vanish.
TEST(Btree, FromSortedOccupancyHoldsAcrossSizes) {
  alloc::Arena a;
  for (std::int64_t n = 0; n <= 200; ++n) {
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < n; ++k) items.emplace_back(k, k);
    T t = test::apply(a, [&](auto& b) {
      return T::from_sorted(b, items.begin(), items.end());
    });
    ASSERT_TRUE(t.check_invariants()) << "n = " << n;
    using T3 = persist::BTree<std::int64_t, std::int64_t, 3>;
    T3 t3 = test::apply(a, [&](auto& b) {
      return T3::from_sorted(b, items.begin(), items.end());
    });
    ASSERT_TRUE(t3.check_invariants()) << "fanout 3, n = " << n;
  }
}

TEST(BtreeBatch, NoopBatchesShareRoot) {
  test::batch_oracle_noop_shares_root<T>();
}

TEST(BtreeBatch, OutcomesAndContents) { test::batch_oracle_outcomes<T>(); }

TEST(BtreeBatch, RandomBatchesMatchSequentialApplication) {
  test::batch_oracle_random<T>(9191, 40, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<T>(9192, 20, test::BatchKeyPattern::kClustered);
}

// Bounded scan rides the range walk; the shared oracle also re-checks
// for_each_range and count_range against a std::set reference.
TEST(Btree, ScanMatchesOracle) { test::range_oracle_random<T>(6101); }

// Sorted read batch over the multiway layout: separator-directed probe
// partitioning plus the leaf linear merge must answer exactly like
// per-key find(). Fanout 3 stresses the tightest nodes.
TEST(Btree, SortedReadBatchMatchesPerKeyFind) {
  test::read_batch_oracle_random<T>(6111, 30, test::BatchKeyPattern::kUniform);
  test::read_batch_oracle_random<T>(6112, 20,
                                    test::BatchKeyPattern::kClustered);
  test::read_batch_oracle_random<persist::BTree<std::int64_t, std::int64_t, 3>>(
      6113, 20, test::BatchKeyPattern::kClustered);
}

// The piece machinery is fanout-sensitive (underflow repair margins
// shrink with F); run the oracle at the tightest and a fat fanout too.
TEST(BtreeBatch, RandomBatchesAcrossFanouts) {
  test::batch_oracle_random<persist::BTree<std::int64_t, std::int64_t, 3>>(
      9291, 25, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<persist::BTree<std::int64_t, std::int64_t, 4>>(
      9292, 25, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<persist::BTree<std::int64_t, std::int64_t, 16>>(
      9293, 25, test::BatchKeyPattern::kClustered);
}

// Occupancy audit around batch-driven growth and shrinkage: a bulk
// insert run must split leaves (height grows, bounds hold), and a mass
// erase must merge/collapse back down to a shorter valid tree.
// ----- the combining UC's clustering probe (count_leaf_runs) -----

TEST(BtreeBatch, CountLeafRunsMatchesLeafPartition) {
  alloc::Arena a;
  // Dense keys 0..n-1 at fanout 8: consecutive keys co-reside in leaves,
  // far-apart keys do not.
  T t = insert_all(a, T{}, iota_keys(512));
  const auto probe = [&](std::vector<std::int64_t> keys) {
    std::vector<typename T::BatchOp> ops;
    for (const auto k : keys) {
      ops.push_back({persist::BatchOpKind::kInsert, k, k});
    }
    return t.count_leaf_runs(std::span<const typename T::BatchOp>(ops));
  };
  EXPECT_EQ(probe({}), 0u);
  EXPECT_EQ(probe({100}), 1u);
  // Two adjacent keys share a leaf; a full-span pair cannot.
  EXPECT_EQ(probe({100, 101}), 1u);
  EXPECT_EQ(probe({0, 511}), 2u);
  // Keys 64 apart at leaf capacity 8 are always on distinct leaves, so
  // the run count equals the key count.
  EXPECT_EQ(probe({0, 64, 128, 192, 256, 320, 384, 448}), 8u);
  // A clustered window tiles into far fewer leaves than it has ops: every
  // key of 128..191 lands in one of ~64/kLeafMin..64/kLeafCap leaves.
  std::vector<std::int64_t> window;
  for (std::int64_t k = 128; k < 192; ++k) window.push_back(k);
  const unsigned runs = probe(window);
  EXPECT_GE(runs, 64u / T::kLeafCap);
  EXPECT_LE(runs, 64u / T::kLeafMin + 1);
}

TEST(BtreeBatch, CountLeafRunsSampledPrefixStopsEarly) {
  alloc::Arena a;
  T t = insert_all(a, T{}, iota_keys(512));
  std::vector<typename T::BatchOp> ops;
  for (std::int64_t k = 0; k < 512; k += 64) {
    ops.push_back({persist::BatchOpKind::kInsert, k, k});  // 8 leaves
  }
  const std::span<const typename T::BatchOp> span(ops);
  // Uncapped: exact count, everything covered.
  std::size_t covered = ~std::size_t{0};
  EXPECT_EQ(t.count_leaf_runs(span, ~0u, &covered), 8u);
  EXPECT_EQ(covered, ops.size());
  // Capped at 4: four descents, four leading ops covered (one per leaf).
  EXPECT_EQ(t.count_leaf_runs(span, 4, &covered), 4u);
  EXPECT_EQ(covered, 4u);
  // Clustered prefix: the cap still covers many ops per counted leaf.
  std::vector<typename T::BatchOp> dense;
  for (std::int64_t k = 128; k < 192; ++k) {
    dense.push_back({persist::BatchOpKind::kInsert, k, k});
  }
  const unsigned dense_runs = t.count_leaf_runs(
      std::span<const typename T::BatchOp>(dense), 4, &covered);
  EXPECT_EQ(dense_runs, 4u);
  // Every key in the window is in the batch, so each fully-sampled leaf
  // contributes its whole occupancy (>= kLeafMin); the first leaf may be
  // entered mid-range, so discount it.
  EXPECT_GE(covered, 3u * T::kLeafMin + 1);
}

TEST(BtreeBatch, SplitsAndCollapsesKeepOccupancyBounds) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t k = 0; k < 512; ++k) items.emplace_back(k * 2, k);
  T t = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  const std::size_t h0 = t.height();

  // Dense insert run: every odd key in [0, 2048) lands, doubling the
  // contested range and forcing leaf splits all along it.
  std::vector<T::BatchOp> grow;
  for (std::int64_t k = 1; k < 2048; k += 2) {
    grow.push_back(T::BatchOp{T::BatchOpKind::kInsert, k, k});
  }
  std::vector<T::BatchOutcome> out(grow.size());
  T big = test::apply(
      a, [&](auto& b) { return t.apply_sorted_batch(b, grow, out); });
  EXPECT_EQ(big.size(), 512u + grow.size());
  EXPECT_TRUE(big.check_invariants());
  EXPECT_GE(big.height(), h0);

  // Mass erase: everything but 3 keys vanishes in one batch; the tree
  // must collapse to a short valid root without underfull nodes.
  std::vector<T::BatchOp> shrink;
  for (const auto& [k, v] : big.items()) {
    if (k % 997 != 0) {
      shrink.push_back(T::BatchOp{T::BatchOpKind::kErase, k, std::nullopt});
    }
  }
  std::vector<T::BatchOutcome> out2(shrink.size());
  T small = test::apply(
      a, [&](auto& b) { return big.apply_sorted_batch(b, shrink, out2); });
  EXPECT_EQ(small.size(), big.size() - shrink.size());
  EXPECT_TRUE(small.check_invariants());
  EXPECT_LT(small.height(), big.height());
  EXPECT_TRUE(big.check_invariants());  // old version untouched

  // And all the way to empty.
  std::vector<T::BatchOp> wipe;
  for (const auto& [k, v] : small.items()) {
    wipe.push_back(T::BatchOp{T::BatchOpKind::kErase, k, std::nullopt});
  }
  std::vector<T::BatchOutcome> out3(wipe.size());
  T none = test::apply(
      a, [&](auto& b) { return small.apply_sorted_batch(b, wipe, out3); });
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(none.check_invariants());
}

}  // namespace
}  // namespace pathcopy
