// Cross-module integration tests: the full stack (allocator -> builder ->
// persistent structure -> Atom -> reclaimer) exercised end to end in the
// configurations the benches use.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "bench_util/workloads.hpp"
#include "core/atom.hpp"
#include "persist/avl.hpp"
#include "persist/external_bst.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/watermark.hpp"
#include "seq/locked.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using A = persist::AvlTree<std::int64_t, std::int64_t>;
using E = persist::ExternalBst<std::int64_t, std::int64_t>;

TEST(Integration, BatchWorkloadMatchesLockedBaseline) {
  // The paper's Batch workload, executed concurrently through the UC and
  // serially through the coarse-locked baseline: identical final sets.
  const auto keys = bench::make_batch_keys(500, 4, 200, 21);

  alloc::MallocAlloc a;
  std::vector<std::int64_t> uc_items;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    {
      core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
      auto sorted = keys.initial;
      std::sort(sorted.begin(), sorted.end());
      std::vector<std::pair<std::int64_t, std::int64_t>> items;
      for (const auto k : sorted) items.emplace_back(k, k);
      atom.update(ctx, [&](T, auto& b) {
        return T::from_sorted(b, items.begin(), items.end());
      });
    }
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < keys.per_thread.size(); ++w) {
      workers.emplace_back([&, w] {
        core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
        // One full batch round: insert all my keys, then remove all but
        // the first quarter (leaves a verifiable residue).
        for (const auto k : keys.per_thread[w]) {
          ASSERT_EQ(atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); }),
                    core::UpdateResult::kInstalled);
        }
        for (std::size_t i = keys.per_thread[w].size() / 4;
             i < keys.per_thread[w].size(); ++i) {
          const auto k = keys.per_thread[w][i];
          ASSERT_EQ(atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); }),
                    core::UpdateResult::kInstalled);
        }
      });
    }
    for (auto& w : workers) w.join();
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
    atom.read(ctx, [&](T t) {
      EXPECT_TRUE(t.check_invariants());
      for (const auto& [k, v] : t.items()) uc_items.push_back(k);
    });
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);

  // Locked baseline, same operations (serial order differs; sets agree).
  seq::Locked<seq::SeqTreap<std::int64_t, std::int64_t>> locked;
  locked.with([&](auto& t) {
    for (const auto k : keys.initial) t.insert(k, k);
  });
  for (const auto& per : keys.per_thread) {
    locked.with([&](auto& t) {
      for (const auto k : per) t.insert(k, k);
      for (std::size_t i = per.size() / 4; i < per.size(); ++i) t.erase(per[i]);
    });
  }
  std::vector<std::int64_t> locked_items;
  locked.with_read([&](const auto& t) {
    t.for_each([&](const std::int64_t& k, const std::int64_t&) {
      locked_items.push_back(k);
    });
  });
  EXPECT_EQ(uc_items, locked_items);
}

TEST(Integration, RandomWorkloadHalfNoops) {
  // §4.2's property: with insert/remove of uniform keys, about half the
  // operations are semantic no-ops regardless of the set's density.
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
    util::Xoshiro256 rng(5);
    constexpr std::int64_t kRange = 200;
    // Pre-fill to steady-state density.
    for (int i = 0; i < 400; ++i) {
      const std::int64_t k = rng.range(-kRange, kRange);
      atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
    }
    ctx.stats = core::OpStats{};
    constexpr int kOps = 8000;
    for (int i = 0; i < kOps; ++i) {
      const std::int64_t k = rng.range(-kRange, kRange);
      if (rng.chance(1, 2)) {
        atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
      } else {
        atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
      }
    }
    const double noop_frac =
        static_cast<double>(ctx.stats.noop_updates) / kOps;
    EXPECT_NEAR(noop_frac, 0.5, 0.05);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Integration, SameHistoryAcrossStructures) {
  // The UC is structure-agnostic: one operation history applied to the
  // treap, AVL and external BST yields the same abstract set.
  alloc::MallocAlloc a;
  std::vector<std::pair<bool, std::int64_t>> history;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 2000; ++i) {
    history.emplace_back(rng.chance(3, 5), rng.range(0, 150));
  }

  auto run = [&](auto structure_tag) {
    using DS = decltype(structure_tag);
    reclaim::EpochReclaimer smr;
    core::Atom<DS, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    typename core::Atom<DS, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    for (const auto& [is_insert, k] : history) {
      if (is_insert) {
        atom.update(ctx, [k](DS t, auto& b) { return t.insert(b, k, k); });
      } else {
        atom.update(ctx, [k](DS t, auto& b) { return t.erase(b, k); });
      }
    }
    return atom.read(ctx, [](DS t) {
      std::vector<std::int64_t> keys;
      t.for_each([&](const std::int64_t& key, const std::int64_t&) {
        keys.push_back(key);
      });
      return keys;
    });
  };

  const auto treap_keys = run(T{});
  const auto avl_keys = run(A{});
  const auto ebst_keys = run(E{});
  EXPECT_EQ(treap_keys, avl_keys);
  EXPECT_EQ(treap_keys, ebst_keys);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Integration, MvccAnalyticsOverSnapshots) {
  // The MVCC use case the paper borrows from: an analytical reader pins a
  // snapshot and computes an aggregate while writers keep committing. The
  // writers maintain the invariant sum(values) == 10 * size, so any torn
  // read would be visible in the aggregate.
  alloc::MallocAlloc a;
  {
    reclaim::WatermarkReclaimer smr;
    core::Atom<T, reclaim::WatermarkReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    {
      core::Atom<T, reclaim::WatermarkReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
      atom.update(ctx, [](T t, auto& b) {
        for (std::int64_t i = 0; i < 128; ++i) t = t.insert(b, i, 10);
        return t;
      });
    }
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      core::Atom<T, reclaim::WatermarkReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
      util::Xoshiro256 rng(77);
      for (int i = 0; i < 4000; ++i) {
        const std::int64_t k = rng.range(0, 400);
        if (rng.chance(1, 2)) {
          atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, 10); });
        } else {
          atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
        }
      }
      stop.store(true);
    });
    std::thread analyst([&] {
      while (!stop.load()) {
        auto snap = atom.snapshot();
        const T frozen = T::from_root(
            core::Atom<T, reclaim::WatermarkReclaimer,
                       alloc::MallocAlloc>::structural_root(snap.root()));
        std::int64_t sum = 0;
        frozen.for_each([&](const std::int64_t&, const std::int64_t& v) { sum += v; });
        ASSERT_EQ(sum, static_cast<std::int64_t>(frozen.size()) * 10);
        ASSERT_TRUE(frozen.check_invariants());
      }
    });
    writer.join();
    analyst.join();
    smr.drain_all();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Integration, PoolBackedStackSurvivesThreadChurn) {
  // Worker generations come and go; the pool backend owns all memory, so
  // nothing dangles when a generation's caches die.
  alloc::PoolBackend pool;
  reclaim::EpochReclaimer smr;
  {
    core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
    for (int gen = 0; gen < 3; ++gen) {
      std::vector<std::thread> workers;
      for (int w = 0; w < 3; ++w) {
        workers.emplace_back([&, gen, w] {
          alloc::ThreadCache cache(pool);
          core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(
              smr, cache);
          const std::int64_t base = (gen * 3 + w) * 500;
          for (std::int64_t i = 0; i < 500; ++i) {
            atom.update(ctx, [&](T t, auto& b) { return t.insert(b, base + i, i); });
          }
        });
      }
      for (auto& w : workers) w.join();
    }
    alloc::ThreadCache cache(pool);
    core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(smr, cache);
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 9u * 500u);
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
}

TEST(Integration, FailedAttemptNodesAreRecycledNotLeaked) {
  // Under heavy contention many attempts fail; their nodes must be reused,
  // keeping allocation bounded near (successful ops x path length).
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
        for (std::int64_t i = 0; i < 2000; ++i) {
          const std::int64_t k = w * 2000 + i;
          atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
        }
      });
    }
    for (auto& w : workers) w.join();
    smr.drain_all();
    // Live nodes == final tree size: every failed attempt's nodes and all
    // superseded path nodes have been freed or recycled.
    EXPECT_EQ(a.stats().live_blocks(), 8000u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
