#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/map_view.hpp"
#include "persist/avl.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Smr = reclaim::EpochReclaimer;
using Alloc = alloc::MallocAlloc;
using AtomT = core::Atom<T, Smr, Alloc>;
using View = core::MapView<T, Smr, Alloc>;

struct Fixture {
  Alloc alloc;
  Smr smr;
  AtomT atom{smr, *alloc.retire_backend()};
  AtomT::Ctx ctx{smr, alloc};
  View view{atom, ctx};
};

TEST(MapView, InsertReportsNovelty) {
  Fixture f;
  EXPECT_TRUE(f.view.insert(1, 10));
  EXPECT_FALSE(f.view.insert(1, 99));
  EXPECT_EQ(f.view.get(1), 10);
}

TEST(MapView, EraseReportsPresence) {
  Fixture f;
  f.view.insert(1, 10);
  EXPECT_TRUE(f.view.erase(1));
  EXPECT_FALSE(f.view.erase(1));
  EXPECT_TRUE(f.view.empty());
}

TEST(MapView, GetAndGetOr) {
  Fixture f;
  f.view.insert(5, 50);
  EXPECT_EQ(f.view.get(5), 50);
  EXPECT_EQ(f.view.get(6), std::nullopt);
  EXPECT_EQ(f.view.get_or(5, -1), 50);
  EXPECT_EQ(f.view.get_or(6, -1), -1);
}

TEST(MapView, InsertOrAssignOverwrites) {
  Fixture f;
  f.view.insert(2, 20);
  f.view.insert_or_assign(2, 200);
  EXPECT_EQ(f.view.get(2), 200);
  EXPECT_EQ(f.view.size(), 1u);
}

TEST(MapView, UpdateValueIsAtomicRmw) {
  Fixture f;
  f.view.insert(0, 0);
  EXPECT_TRUE(f.view.update_value(0, [](std::int64_t v) { return v + 5; }));
  EXPECT_EQ(f.view.get(0), 5);
  EXPECT_FALSE(f.view.update_value(99, [](std::int64_t v) { return v; }));
}

TEST(MapView, UpsertMergesOrInserts) {
  Fixture f;
  f.view.upsert(7, 1, [](std::int64_t v) { return v * 10; });
  EXPECT_EQ(f.view.get(7), 1);  // was absent
  f.view.upsert(7, 1, [](std::int64_t v) { return v * 10; });
  EXPECT_EQ(f.view.get(7), 10);  // merged
}

TEST(MapView, CeilingAndRange) {
  Fixture f;
  for (const std::int64_t k : {10, 20, 30}) f.view.insert(k, k);
  EXPECT_EQ(f.view.ceiling(15), 20);
  EXPECT_EQ(f.view.ceiling(30), 30);
  EXPECT_EQ(f.view.ceiling(31), std::nullopt);
  EXPECT_EQ(f.view.count_range(10, 30), 2u);
}

TEST(MapView, ForEachConsistentSnapshot) {
  Fixture f;
  for (const std::int64_t k : {3, 1, 2}) f.view.insert(k, k * 10);
  std::map<std::int64_t, std::int64_t> seen;
  f.view.for_each([&](const std::int64_t& k, const std::int64_t& v) {
    seen.emplace(k, v);
  });
  EXPECT_EQ(seen, (std::map<std::int64_t, std::int64_t>{{1, 10}, {2, 20}, {3, 30}}));
}

TEST(MapView, ConcurrentCountersViaUpsert) {
  // Word-count style aggregation: every thread upserts into shared keys.
  Alloc alloc;
  {
    Smr smr;
    AtomT atom(smr, *alloc.retire_backend());
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&] {
        AtomT::Ctx ctx(smr, alloc);
        View view(atom, ctx);
        util::Xoshiro256 rng(0);  // same stream: all threads hit same keys
        for (int i = 0; i < kPerThread; ++i) {
          view.upsert(static_cast<std::int64_t>(rng.below(16)), 1,
                      [](std::int64_t v) { return v + 1; });
        }
      });
    }
    for (auto& t : workers) t.join();
    AtomT::Ctx ctx(smr, alloc);
    View view(atom, ctx);
    std::int64_t total = 0;
    view.for_each([&](const std::int64_t&, const std::int64_t& v) { total += v; });
    EXPECT_EQ(total, kThreads * kPerThread);  // no increment lost
  }
  EXPECT_EQ(alloc.stats().live_blocks(), 0u);
}

TEST(MapView, WorksOverAvlToo) {
  using A = persist::AvlTree<std::int64_t, std::int64_t>;
  alloc::MallocAlloc al;
  {
    Smr smr;
    core::Atom<A, Smr, Alloc> atom(smr, *al.retire_backend());
    core::Atom<A, Smr, Alloc>::Ctx ctx(smr, al);
    core::MapView<A, Smr, Alloc> view(atom, ctx);
    view.insert(1, 10);
    view.insert(2, 20);
    EXPECT_EQ(view.get(2), 20);
    EXPECT_TRUE(view.erase(1));
    EXPECT_EQ(view.size(), 1u);
  }
  EXPECT_EQ(al.stats().live_blocks(), 0u);
}

TEST(MapView, OracleChurn) {
  Fixture f;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(404);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t k = rng.range(-30, 30);
    switch (rng.below(4)) {
      case 0:
        EXPECT_EQ(f.view.insert(k, k), oracle.emplace(k, k).second);
        break;
      case 1:
        EXPECT_EQ(f.view.erase(k), oracle.erase(k) > 0);
        break;
      case 2:
        f.view.insert_or_assign(k, k * 2);
        oracle.insert_or_assign(k, k * 2);
        break;
      default: {
        const auto got = f.view.get(k);
        const auto it = oracle.find(k);
        if (it == oracle.end()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          EXPECT_EQ(got, it->second);
        }
      }
    }
    ASSERT_EQ(f.view.size(), oracle.size());
  }
}

// MapView is structure-generic: anything with the ordered-node surface
// (ceiling_node, count_range, ...) plugs in. Exercise it over the
// red-black tree to pin that contract.
TEST(MapView, WorksOverRedBlackTree) {
  using R = persist::RbTree<std::int64_t, std::int64_t>;
  Alloc alloc;
  {
    Smr smr;
    core::Atom<R, Smr, Alloc> atom(smr, *alloc.retire_backend());
    core::Atom<R, Smr, Alloc>::Ctx ctx(smr, alloc);
    core::MapView<R, Smr, Alloc> view(atom, ctx);

    EXPECT_TRUE(view.insert(3, 30));
    EXPECT_TRUE(view.insert(1, 10));
    EXPECT_FALSE(view.insert(3, 99));
    view.upsert(3, 0, [](std::int64_t v) { return v + 5; });
    EXPECT_EQ(view.get(3), 35);
    EXPECT_EQ(view.ceiling(2), 3);
    EXPECT_EQ(view.count_range(0, 10), 2u);
    EXPECT_TRUE(view.erase(1));
    EXPECT_EQ(view.size(), 1u);
  }
  EXPECT_EQ(alloc.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
