#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "reclaim/retired.hpp"
#include "reclaim/watermark.hpp"

namespace pathcopy {
namespace {

struct Canary {
  explicit Canary(std::atomic<int>* counter) : destroyed(counter) {}
  ~Canary() {
    if (destroyed != nullptr) destroyed->fetch_add(1);
  }
  std::atomic<int>* destroyed;
  std::uint64_t payload = 0x0ddba11deadc0deULL;
};

template <class Alloc>
const Canary* make_canary(Alloc& a, std::atomic<int>* counter) {
  void* p = a.allocate(sizeof(Canary), alignof(Canary));
  return ::new (p) Canary(counter);
}

std::vector<reclaim::Retired> one_retired(alloc::MallocAlloc& a, const Canary* c) {
  std::vector<reclaim::Retired> v;
  v.push_back(reclaim::make_retired(c, a.retire_backend()));
  return v;
}

TEST(Watermark, UnpinnedWatermarkIsMax) {
  reclaim::WatermarkReclaimer smr;
  EXPECT_EQ(smr.watermark(), reclaim::WatermarkReclaimer::kUnpinned);
}

TEST(Watermark, GuardPinsCurrentVersion) {
  reclaim::WatermarkReclaimer smr;
  auto h = smr.register_thread();
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{7};
  auto g = smr.pin(h, root, ver);
  EXPECT_EQ(g.root(), &dummy);
  EXPECT_EQ(smr.watermark(), 7u);
}

TEST(Watermark, GuardReleaseUnpins) {
  reclaim::WatermarkReclaimer smr;
  auto h = smr.register_thread();
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{7};
  { auto g = smr.pin(h, root, ver); }
  EXPECT_EQ(smr.watermark(), reclaim::WatermarkReclaimer::kUnpinned);
}

TEST(Watermark, BundleFreedOnlyPastDeathVersion) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::WatermarkReclaimer smr;
  auto reader = smr.register_thread();
  auto writer = smr.register_thread();
  const Canary* c = make_canary(a, &destroyed);
  std::atomic<const void*> root{c};
  std::atomic<std::uint64_t> ver{3};

  auto g = smr.pin(reader, root, ver);  // pins version 3
  // Bundle dies at version 4: the version-3 reader may still use it.
  smr.retire_bundle(writer, 4, c, nullptr, one_retired(a, c));
  smr.drain_all();  // forces a collect
  EXPECT_EQ(destroyed.load(), 0);
  EXPECT_EQ(static_cast<const Canary*>(g.root())->payload, 0x0ddba11deadc0deULL);

  // Bundle dying at version 3 or lower is freeable even with the pin.
  const Canary* c2 = make_canary(a, &destroyed);
  smr.retire_bundle(writer, 3, nullptr, nullptr, one_retired(a, c2));
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 1);  // c2 went, c stayed

  { auto g2 = std::move(g); }  // release the pin
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 2);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Watermark, SnapshotBlocksOnlyOlderBundles) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::WatermarkReclaimer smr;
  auto writer = smr.register_thread();
  const Canary* c = make_canary(a, &destroyed);
  std::atomic<const void*> root{c};
  std::atomic<std::uint64_t> ver{5};

  auto snap = smr.pin_snapshot(root, ver);  // pins version 5, no guard held
  EXPECT_EQ(snap.version(), 5u);
  EXPECT_EQ(snap.root(), c);
  EXPECT_EQ(smr.watermark(), 5u);

  smr.retire_bundle(writer, 6, c, nullptr, one_retired(a, c));
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 0);  // snapshot holds version 5 < 6

  snap.release();
  smr.drain_all();
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Watermark, SnapshotMoveSemantics) {
  reclaim::WatermarkReclaimer smr;
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{9};
  auto s1 = smr.pin_snapshot(root, ver);
  auto s2 = std::move(s1);
  EXPECT_EQ(s2.version(), 9u);
  EXPECT_EQ(smr.watermark(), 9u);
  {
    auto s3 = std::move(s2);
  }
  EXPECT_EQ(smr.watermark(), reclaim::WatermarkReclaimer::kUnpinned);
}

TEST(Watermark, MultipleSnapshotsMinWins) {
  reclaim::WatermarkReclaimer smr;
  int dummy = 0;
  std::atomic<const void*> root{&dummy};
  std::atomic<std::uint64_t> ver{3};
  auto s3 = smr.pin_snapshot(root, ver);
  ver.store(8);
  auto s8 = smr.pin_snapshot(root, ver);
  EXPECT_EQ(smr.watermark(), 3u);
  s3.release();
  EXPECT_EQ(smr.watermark(), 8u);
  s8.release();
}

TEST(Watermark, RetireTriggersPeriodicCollect) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  reclaim::WatermarkReclaimer smr;
  auto h = smr.register_thread();
  const Canary* c = make_canary(a, &destroyed);
  smr.retire_bundle(h, 2, nullptr, nullptr, one_retired(a, c));
  for (std::uint64_t i = 0; i <= reclaim::WatermarkReclaimer::kScanInterval; ++i) {
    smr.retire_bundle(h, 2, nullptr, nullptr, {});
  }
  EXPECT_EQ(destroyed.load(), 1);  // collected without an explicit drain
}

TEST(Watermark, ConcurrentPinRetireStress) {
  alloc::MallocAlloc a;
  std::atomic<int> destroyed{0};
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kOps = 3000;
  {
    reclaim::WatermarkReclaimer smr;
    std::atomic<const void*> root{make_canary(a, &destroyed)};
    std::atomic<std::uint64_t> ver{1};
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&] {
        auto h = smr.register_thread();
        for (int i = 0; i < kOps; ++i) {
          const Canary* fresh = make_canary(a, &destroyed);
          const void* old = root.exchange(fresh);
          const std::uint64_t death = ver.fetch_add(1) + 1;
          smr.retire_bundle(h, death, old, fresh,
                            one_retired(a, static_cast<const Canary*>(old)));
        }
      });
    }
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&] {
        auto h = smr.register_thread();
        while (!stop.load()) {
          auto g = smr.pin(h, root, ver);
          ASSERT_EQ(static_cast<const Canary*>(g.root())->payload,
                    0x0ddba11deadc0deULL);
        }
      });
    }
    for (int w = 0; w < kWriters; ++w) threads[w].join();
    stop.store(true);
    for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
    // Retire the final canary before teardown.
    auto h = smr.register_thread();
    const auto* last = static_cast<const Canary*>(root.load());
    smr.retire_bundle(h, ver.load() + 1, nullptr, nullptr, one_retired(a, last));
    smr.drain_all();
  }
  EXPECT_EQ(destroyed.load(), kWriters * kOps + 1);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
