// Deterministic-scheduler model checking of the store's concurrency
// protocols (src/verify/sched/). Compiled only under
// -DPATHCOPY_MODELCHECK=ON, which turns the PC_YIELD points in the SUT
// into scheduler decision points.
//
// The suite has four layers:
//
//   1. Scheduler white-box: a decision trace fully determines the
//      execution — same seed same trace, replay reproduces observations.
//   2. The headline regression: the nullptr cut-token ABA. A 3-thread
//      kernel shows the legacy Atom's stability predicate (token
//      equality PLUS the version cross-check) claiming "unmoved" across
//      two real installs, found both exhaustively and by seeded random
//      walks; a scripted 4-thread schedule drives the full ConsistentCut
//      to certify a cut that matches NO instant of the ground-truth
//      timeline. Both replay against the fixed Atom (fresh tagged
//      sentinel per erase-to-empty) and the bug is gone — the probe
//      catches the moved shard on token identity alone.
//   3. Window sweeps: exhaustive bounded exploration of the install/bump
//      window (both UC backends, pending-aware linearizability via
//      ModelHistory), the combining funnel's multi-slot gather window,
//      the Dekker announce/drain handshake (plus a broken-protocol
//      positive control), the parked-op migration gate, the executor
//      stop/submit race (including the lock-free lane's windows), the
//      shard lane itself: the ring's claim/publish window and the
//      park/wake handshake, each with a mutant positive control
//      (dropped slot-stamp check, dropped park re-read) the checker
//      must catch — and the batched read path: multi_get's single-pin
//      sweep racing atomic pair-flip installs (with a pin-per-key
//      mutant the search must tear), plus the read-ticket/stop race.
//   4. A seeded random-walk smoke (PATHCOPY_MC_SEED overrides the seed)
//      that scripts/check.sh runs time-boxed; any failure prints the
//      seed, and replay_seed reproduces the schedule from it alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/router.hpp"
#include "store/shard_lane.hpp"
#include "store/router_epoch.hpp"
#include "store/sharded_map.hpp"
#include "store/version_vector.hpp"
#include "util/modelcheck.hpp"
#include "verify/history.hpp"
#include "verify/sched/model_check.hpp"
#include "verify/sched/model_history.hpp"
#include "verify/sched/virtual_scheduler.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Epoch = reclaim::EpochReclaimer;
using MA = alloc::MallocAlloc;
using FixedAtom = core::Atom<T, Epoch, MA>;
using LegacyAtom = core::Atom<T, Epoch, MA, /*LegacyNullEmptyRoot=*/true>;
using CombUc = core::CombiningAtom<T, Epoch, MA>;
using RangeR = store::RangeRouter<std::int64_t>;
using verify::OpType;
using verify::sched::ExploreResult;
using verify::sched::ModelHistory;
using verify::sched::VirtualScheduler;

// ---------------------------------------------------------------------
// 1. Scheduler white-box: the trace is the execution.
// ---------------------------------------------------------------------

// Three logical threads, each appending tid*10+step around explicit
// yields; the observation log is a pure function of the decision trace.
std::vector<int> run_step_scenario(VirtualScheduler& vs) {
  auto log = std::make_shared<std::vector<int>>();
  for (unsigned t = 0; t < 3; ++t) {
    vs.spawn([log, t] {
      for (int i = 0; i < 2; ++i) {
        PC_YIELD("step");
        log->push_back(static_cast<int>(t) * 10 + i);
      }
    });
  }
  vs.run();
  return *log;
}

TEST(ModelSched, SameSeedSameTraceSameObservations) {
  verify::sched::RandomStrategy strat(12345, 16);
  VirtualScheduler vs1(strat);
  const std::vector<int> log1 = run_step_scenario(vs1);
  const std::vector<unsigned> trace1 = vs1.last_trace();

  VirtualScheduler vs2(strat);  // begin_run() re-arms from the seed
  const std::vector<int> log2 = run_step_scenario(vs2);
  EXPECT_EQ(trace1, vs2.last_trace());
  EXPECT_EQ(log1, log2);
}

TEST(ModelSched, ReplayOfATraceReproducesTheExecution) {
  verify::sched::RandomStrategy rnd(98765, 16);
  VirtualScheduler vs1(rnd);
  const std::vector<int> log1 = run_step_scenario(vs1);
  const std::vector<unsigned> trace = vs1.last_trace();

  verify::sched::ReplayStrategy rep(trace);
  VirtualScheduler vs2(rep);
  const std::vector<int> log2 = run_step_scenario(vs2);
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(trace, vs2.last_trace());
}

TEST(ModelSched, RoundRobinInterleavesInTidOrder) {
  verify::sched::RoundRobinStrategy rr;
  VirtualScheduler vs(rr);
  const std::vector<int> log = run_step_scenario(vs);
  // RR grants 0,1,2,0,1,2,... and each grant runs one loop step; the
  // final grants retire the threads in tid order.
  EXPECT_EQ(log, (std::vector<int>{0, 10, 20, 1, 11, 21}));
}

// ---------------------------------------------------------------------
// 2a. The ABA kernel: one shard, a reader pinning the empty root, two
//     writers whose version bumps can both park between root CAS and
//     fetch_add. The reader applies the LEGACY stability predicate —
//     token equality AND version equality, i.e. strictly stronger than
//     what the old ConsistentCut checked — and the schedule space still
//     contains runs where it claims "unmoved since pin" across two real
//     installs. Ground truth is exact because logical threads are
//     serialized: a writer's CAS has landed iff its op completed
//     (result recorded) or it is parked at the "atom.bump" yield, which
//     sits exactly between the CAS and the bump.
// ---------------------------------------------------------------------

const std::vector<std::string> kAtomKernelTags = {"atom.install", "atom.bump",
                                                  "r.window"};

// Decision-trace regression corpus for the kernel (tids: 0 = reader,
// 1 = inserting writer, 2 = erasing writer): reader pins the empty
// root, both writers CAS and park before their bumps, reader probes.
const std::vector<unsigned> kKernelAbaTrace = {0, 1, 1, 2, 2, 0};

template <class AtomT>
std::optional<std::string> atom_kernel_body(VirtualScheduler& vs) {
  struct Shared {
    MA a;
    Epoch smr;
    AtomT atom;
    int installed[2] = {0, 0};  // completed installs per writer
    unsigned wtid[2] = {0, 0};
    std::optional<std::string> fail;
    Shared() : atom(smr, a) {}
  };
  auto sh = std::make_shared<Shared>();

  // Exact "installs so far" at any serialized instant: completed ops
  // that landed, plus writers currently parked between CAS and bump.
  auto installs_now = [sh, &vs] {
    int n = sh->installed[0] + sh->installed[1];
    for (int w = 0; w < 2; ++w) {
      const char* tag = vs.parked_tag(sh->wtid[w]);
      if (tag != nullptr && std::strcmp(tag, "atom.bump") == 0) ++n;
    }
    return n;
  };

  vs.spawn([sh, installs_now] {  // tid 0: the cut-style reader
    typename AtomT::Ctx ctx(sh->smr, sh->a);
    const int at_pin = installs_now();
    const auto view = sh->atom.pin_versioned(ctx);
    PC_YIELD("r.window");
    const bool stable = sh->atom.root_token() == view.token &&
                        sh->atom.version() == view.version;
    if (stable && installs_now() != at_pin) {
      sh->fail = "stability predicate claims 'unmoved since pin' but " +
                 std::to_string(installs_now() - at_pin) +
                 " install(s) landed inside the window";
    }
  });
  sh->wtid[0] = vs.spawn([sh] {  // tid 1: insert k
    typename AtomT::Ctx ctx(sh->smr, sh->a);
    sh->installed[0] = sh->atom.insert(ctx, 0, 7, 70) ? 1 : 0;
  });
  sh->wtid[1] = vs.spawn([sh] {  // tid 2: erase k
    typename AtomT::Ctx ctx(sh->smr, sh->a);
    sh->installed[1] = sh->atom.erase(ctx, 0, 7) ? 1 : 0;
  });
  vs.run();
  return sh->fail;
}

TEST(ModelCheckAtom, ExhaustiveSearchFindsTheLegacyNullTokenAba) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      12, atom_kernel_body<LegacyAtom>, kAtomKernelTags);
  ASSERT_FALSE(res.ok) << "legacy null-token Atom passed " << res.schedules
                       << " schedules — the ABA kernel should be reachable";
  // The found schedule is itself a replayable regression.
  const std::optional<std::string> again = verify::sched::replay_trace(
      res.failing_trace, atom_kernel_body<LegacyAtom>, kAtomKernelTags);
  EXPECT_TRUE(again.has_value()) << "failing trace did not replay";
}

TEST(ModelCheckAtom, CorpusTraceReproducesTheLegacyAba) {
  const std::optional<std::string> fail = verify::sched::replay_trace(
      kKernelAbaTrace, atom_kernel_body<LegacyAtom>, kAtomKernelTags);
  ASSERT_TRUE(fail.has_value());
  EXPECT_NE(fail->find("install(s) landed inside the window"),
            std::string::npos);
}

TEST(ModelCheckAtom, SentinelTokensCloseTheKernelExhaustively) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      12, atom_kernel_body<FixedAtom>, kAtomKernelTags);
  EXPECT_TRUE(res.ok) << "schedule " << res.schedules << ": " << res.reason;
  EXPECT_GT(res.schedules, 100u);  // the window was actually explored
  // The exact schedule that broke the legacy Atom is clean now.
  const std::optional<std::string> fail = verify::sched::replay_trace(
      kKernelAbaTrace, atom_kernel_body<FixedAtom>, kAtomKernelTags);
  EXPECT_FALSE(fail.has_value()) << *fail;
}

TEST(ModelCheckAtom, RandomWalksFindTheLegacyAbaAndTheSeedReplaysIt) {
  const ExploreResult res = verify::sched::explore_random(
      0xABA0ABA0u, 400, 12, atom_kernel_body<LegacyAtom>, kAtomKernelTags);
  ASSERT_FALSE(res.ok) << "no random walk hit the ABA in " << res.schedules
                       << " walks";
  // The seed alone reproduces the schedule (the CI-log workflow).
  const std::optional<std::string> again = verify::sched::replay_seed(
      res.failing_seed, 12, atom_kernel_body<LegacyAtom>, kAtomKernelTags);
  EXPECT_TRUE(again.has_value())
      << "seed " << res.failing_seed << " did not reproduce";
}

// ---------------------------------------------------------------------
// 2b. The full protocol: a scripted 4-thread schedule in which the
//     legacy ConsistentCut certifies a cut matching NO instant of the
//     ground-truth timeline. Threads (spawn order): R takes the cut
//     over two single-Atom "shards"; A lands three inserts on shard 0;
//     B1/B2 insert then erase key 7 on shard 1, each parking between
//     CAS and bump.
//
//     Timeline of states (shard0 keys ; shard1 keys) after each CAS:
//       ({1};∅) → ({1,2};∅) → ({1,2};{7}) → ({1,2,3};{7})
//               → ({1,2,3,4};{7}) → ({1,2,3,4};∅)
//     The legacy run stabilizes on ({1,2,3}, ∅): shard 0's pinned
//     version exists only while shard 1 holds {7}, so no instant ever
//     looked like the certified cut — and shard 1's version counter
//     still reads its initial value at that point (both bumps parked),
//     so the deleted version cross-check would have passed too.
// ---------------------------------------------------------------------

const std::vector<std::string> kCutTags = {"cut.epoch", "cut.pin", "cut.probe",
                                           "atom.install", "atom.bump"};

// The corpus trace. Decision-by-decision: R reaches its first probe
// pass (0,0,0,0); A fully lands key 2 (1,1,1); R's pass 1 sees shard 0
// moved, shard 1 still on its initial empty root (0,0); B1 CASes key 7
// in and parks (2,2); A CASes key 3 (1); R re-pins shard 0 at {1,2,3}
// and validates it (0,0); A CASes key 4 (1,1 — bump of 3, CAS of 4);
// B2 CASes key 7 out and parks (3,3); R probes shard 1 (0).
const std::vector<unsigned> kCutAbaTrace = {0, 0, 0, 0, 1, 1, 1, 0, 0, 2,
                                            2, 1, 0, 0, 1, 1, 3, 3, 0};

struct CutRunOutcome {
  std::size_t n0 = 0, n1 = 0;          // pinned snapshot sizes
  bool has_123 = false;                // shard 0 snapshot is exactly {1,2,3}
  std::uint64_t clock1 = 0;            // reported clock for shard 1
  std::uint64_t live_v1_at_cut = 0;    // shard 1's counter when R returned
  std::uint64_t retried[2] = {0, 0};   // per-shard re-pins
};

template <class AtomT>
CutRunOutcome run_cut_schedule(const std::vector<unsigned>& trace) {
  MA a;
  CutRunOutcome out;
  {
    Epoch smr0, smr1;
    AtomT s0(smr0, a), s1(smr1, a);
    {
      typename AtomT::Ctx seed_ctx(smr0, a);
      EXPECT_TRUE(s0.insert(seed_ctx, 0, 1, 10));
    }

    verify::sched::ReplayStrategy strat(trace);
    VirtualScheduler vs(strat);
    vs.set_decision_tags(kCutTags);

    vs.spawn([&] {  // tid 0: the cut reader
      typename AtomT::Ctx c0(smr0, a), c1(smr1, a);
      store::ConsistentCut<AtomT> cut;
      cut.collect(
          2, [&](std::size_t s) -> AtomT& { return s == 0 ? s0 : s1; },
          [&](std::size_t s) -> typename AtomT::Ctx& { return s == 0 ? c0 : c1; },
          [&](std::size_t s) { ++out.retried[s]; });
      out.n0 = cut.snapshot(0).size();
      out.n1 = cut.snapshot(1).size();
      out.has_123 = cut.snapshot(0).contains(1) && cut.snapshot(0).contains(2) &&
                    cut.snapshot(0).contains(3) && !cut.snapshot(0).contains(4);
      out.clock1 = cut.clock()[1];
      out.live_v1_at_cut = s1.version();  // sampled before anyone resumes
      cut.release();
    });
    vs.spawn([&] {  // tid 1: shard-0 writer
      typename AtomT::Ctx ctx(smr0, a);
      s0.insert(ctx, 0, 2, 20);
      s0.insert(ctx, 0, 3, 30);
      s0.insert(ctx, 0, 4, 40);
    });
    vs.spawn([&] {  // tid 2: shard-1 insert
      typename AtomT::Ctx ctx(smr1, a);
      s1.insert(ctx, 0, 7, 70);
    });
    vs.spawn([&] {  // tid 3: shard-1 erase
      typename AtomT::Ctx ctx(smr1, a);
      s1.erase(ctx, 0, 7);
    });
    vs.run();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
  return out;
}

TEST(ModelCheckCut, ScriptedScheduleCertifiesAnImpossibleCutOnLegacy) {
  const auto out = run_cut_schedule<LegacyAtom>(kCutAbaTrace);
  // The certified cut: shard 0 = {1,2,3}, shard 1 = ∅. Whenever shard 1
  // was empty, shard 0 held 1, 2, or 4 keys — never 3 (header comment).
  EXPECT_EQ(out.n0, 3u);
  EXPECT_TRUE(out.has_123);
  EXPECT_EQ(out.n1, 0u);
  // Shard 1 saw exactly one retry-free false validation: its probe
  // passed both times although two installs landed in between.
  EXPECT_EQ(out.retried[1], 0u);
  EXPECT_EQ(out.retried[0], 1u);
  // The deleted version cross-check would not have helped: both bumps
  // are still parked when the cut stabilizes, so the live counter (and
  // the reported clock) still read the initial version.
  EXPECT_EQ(out.live_v1_at_cut, out.clock1);
}

TEST(ModelCheckCut, SentinelTokensCatchTheSameScheduleOnTheFixedAtom) {
  const auto out = run_cut_schedule<FixedAtom>(kCutAbaTrace);
  // The erase-to-empty published a FRESH tagged sentinel, so the final
  // probe sees shard 1 moved, re-pins, and the cut converges on the
  // drained state ({1,2,3,4}, ∅) — a real instant.
  EXPECT_EQ(out.retried[1], 1u);
  EXPECT_EQ(out.n0, 4u);
  EXPECT_EQ(out.n1, 0u);
  EXPECT_FALSE(out.has_123);
}

// ---------------------------------------------------------------------
// 3a. Install/bump window linearizability, both UC backends: two
//     writers and a reader race on one key; every explored schedule's
//     history must check out, including mid-schedule verdicts taken by
//     an observer while writers are parked inside their operations
//     (the pending-op path of the checker).
// ---------------------------------------------------------------------

const std::vector<std::string> kWindowTags = {"atom.install", "atom.bump",
                                              "obs"};

template <class Uc>
std::optional<std::string> atom_window_body(VirtualScheduler& vs) {
  struct Shared {
    MA a;
    Epoch smr;
    Uc uc;
    ModelHistory mh{3};
    std::optional<std::string> fail;
    Shared() : uc(smr, a) {}
  };
  auto sh = std::make_shared<Shared>();

  vs.spawn([sh] {  // tid 0: insert then erase
    typename Uc::Ctx ctx(sh->smr, sh->a);
    const unsigned slot = sh->uc.register_slot();
    sh->mh.run(0, OpType::kInsert, 5,
               [&] { return sh->uc.insert(ctx, slot, 5, 50); });
    sh->mh.run(0, OpType::kErase, 5,
               [&] { return sh->uc.erase(ctx, slot, 5); });
  });
  vs.spawn([sh] {  // tid 1: racing insert
    typename Uc::Ctx ctx(sh->smr, sh->a);
    const unsigned slot = sh->uc.register_slot();
    sh->mh.run(1, OpType::kInsert, 5,
               [&] { return sh->uc.insert(ctx, slot, 5, 51); });
  });
  vs.spawn([sh] {  // tid 2: observer — checks while ops are in flight
    typename Uc::Ctx ctx(sh->smr, sh->a);
    PC_YIELD("obs");
    const verify::Verdict mid = sh->mh.check();
    if (!mid.ok) sh->fail = "mid-schedule: " + mid.reason;
    sh->mh.run(2, OpType::kContains, 5, [&] {
      return sh->uc.read(ctx, [](T t) { return t.contains(5); });
    });
  });
  vs.run();
  if (sh->fail.has_value()) return sh->fail;
  const verify::Verdict v = sh->mh.check();
  if (!v.ok) return "final: " + v.reason;
  return std::nullopt;
}

TEST(ModelCheckWindow, AtomInstallWindowIsLinearizable) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, atom_window_body<FixedAtom>, kWindowTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GT(res.schedules, 100u);
}

TEST(ModelCheckWindow, CombiningInstallWindowIsLinearizable) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, atom_window_body<CombUc>, kWindowTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GT(res.schedules, 100u);
}

// The multi-slot gather: the combiner copies a rival's announced payload
// and then re-reads the slot's sequence to validate the copy. The
// "comb.gather" yield sits exactly between copy and re-read, so this
// sweep parks the combiner mid-gather while the announcer's operation
// is still in flight — every schedule must still linearize.
const std::vector<std::string> kFunnelTags = {"comb.gather", "atom.install",
                                              "atom.bump", "obs"};

TEST(ModelCheckWindow, CombiningGatherWindowIsLinearizable) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, atom_window_body<CombUc>, kFunnelTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GT(res.schedules, 100u);
}

// ---------------------------------------------------------------------
// 3b. The Dekker announce/drain handshake. A session reads the epoch,
//     publishes its mark, and re-reads; the publisher stores the new
//     epoch and drains marks. The model checker explores the window
//     between the session's epoch read and its mark store (the
//     "epoch.mark" yield): with the re-read the protocol is tight; a
//     session that skips the re-read can be drained past and operate
//     under a retired epoch — the search must find exactly that hole
//     (positive control: the checker can see real protocol bugs).
// ---------------------------------------------------------------------

const std::vector<std::string> kDekkerTags = {
    "epoch.mark", "epoch.announce", "epoch.publish", "epoch.drain", "sess.op"};

std::optional<std::string> dekker_body(VirtualScheduler& vs, bool reread) {
  struct Shared {
    store::EpochMarkRegistry reg;
    store::EpochMarkRegistry::Slot* slot = nullptr;
    std::atomic<std::uint64_t> eseq{1};
    bool in_flight = false;
    std::uint64_t used = 0;
    bool drained = false;
    std::optional<std::string> fail;
  };
  auto sh = std::make_shared<Shared>();
  sh->slot = sh->reg.acquire();

  vs.spawn([sh, reread] {  // tid 0: session
    for (;;) {
      const std::uint64_t e = sh->eseq.load(std::memory_order_seq_cst);
      store::EpochMarkRegistry::announce(sh->slot, e);
      if (!reread || sh->eseq.load(std::memory_order_seq_cst) == e) {
        sh->used = e;
        break;
      }
    }
    sh->in_flight = true;
    if (sh->drained && sh->used < 2) {
      sh->fail = "session operating under a drained epoch";
    }
    PC_YIELD("sess.op");
    sh->in_flight = false;
    store::EpochMarkRegistry::clear(sh->slot);
  });
  vs.spawn([sh] {  // tid 1: publisher
    sh->eseq.store(2, std::memory_order_seq_cst);
    PC_YIELD("epoch.publish");
    sh->reg.drain_below(2);
    sh->drained = true;
    if (sh->in_flight && sh->used < 2) {
      sh->fail = "drain completed past a session mid-op under the old epoch";
    }
  });
  vs.run();
  sh->reg.release(sh->slot);
  return sh->fail;
}

TEST(ModelCheckEpoch, DekkerHandshakeHasNoHole) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, [](VirtualScheduler& vs) { return dekker_body(vs, true); },
      kDekkerTags);
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST(ModelCheckEpoch, DroppingTheReReadOpensTheHole) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, [](VirtualScheduler& vs) { return dekker_body(vs, false); },
      kDekkerTags);
  ASSERT_FALSE(res.ok)
      << "the re-read-free protocol should be caught (" << res.schedules
      << " schedules explored)";
  EXPECT_NE(res.reason.find("epoch"), std::string::npos);
}

// ---------------------------------------------------------------------
// 3c. The parked-op migration gate: a client hammers a key that changes
//     owner at a topology flip while the migrator publishes, drains,
//     moves the data, flips ready, and settles. Exactly-once semantics
//     must hold on every schedule: the client's insert sees the
//     pre-seeded value (false), its erase removes exactly one copy
//     (true), and its contains comes up empty (false) — a duplicated or
//     lost key during migration breaks one of the three.
// ---------------------------------------------------------------------

const std::vector<std::string> kGateTags = {
    "epoch.mark", "epoch.announce", "epoch.publish", "epoch.drain",
    "epoch.ready", "epoch.settle", "gate.park", "atom.install", "atom.bump"};

std::optional<std::string> gate_body(VirtualScheduler& vs) {
  using Map = store::ShardedMap<FixedAtom, RangeR>;
  struct Shared {
    MA a;
    Map map;
    bool r_insert = true, r_erase = false, r_contains = true;
    Shared() : map(2, a, RangeR(std::vector<std::int64_t>{100})) {}
  };
  auto sh = std::make_shared<Shared>();
  {
    typename Map::Session seed(sh->map, sh->a);
    if (!seed.insert(50, 7)) return "pre-seed failed";
  }

  vs.spawn([sh] {  // tid 0: client on the moving key
    typename Map::Session sess(sh->map, sh->a);
    sh->r_insert = sess.insert(50, 8);     // expect false: 50 is present
    sh->r_erase = sess.erase(50);          // expect true: exactly one copy
    sh->r_contains = sess.contains(50);    // expect false: it is gone
  });
  vs.spawn([sh] {  // tid 1: migrator — split moves [10,100) from 0 to 1
    auto* e = sh->map.begin_epoch(RangeR(std::vector<std::int64_t>{10}));
    typename Map::Ctx c0(sh->map.shard(0).reclaimer(), sh->a);
    typename Map::Ctx c1(sh->map.shard(1).reclaimer(), sh->a);
    const unsigned slot1 = sh->map.shard(1).register_slot();
    std::vector<std::pair<std::int64_t, std::int64_t>> moving;
    {  // extract the frozen moving range from the drained source; the
       // view must drop before the erases below re-enter c0's guard
      const auto view = sh->map.shard(0).pin_versioned(c0);
      view.snapshot.for_each([&](std::int64_t k, std::int64_t v) {
        if (k >= 10) moving.emplace_back(k, v);
      });
    }
    for (const auto& [k, v] : moving) {
      sh->map.shard(1).insert(c1, slot1, k, v);
    }
    e->set_ready(1);
    for (const auto& [k, v] : moving) {
      sh->map.shard(0).erase(c0, 0, k);
    }
    e->set_ready(0);
    sh->map.settle_epoch(e);
  });
  vs.run();
  if (sh->r_insert) return "insert(50) claimed the key was absent";
  if (!sh->r_erase) return "erase(50) lost the key";
  if (sh->r_contains) return "contains(50) found a stale copy";
  return std::nullopt;
}

TEST(ModelCheckGate, MovingKeyOpsAreExactlyOnceAcrossTheFlip) {
  const ExploreResult res =
      verify::sched::explore_exhaustive(10, gate_body, kGateTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GT(res.schedules, 50u);
}

// ---------------------------------------------------------------------
// 3d. Executor stop/submit race: a submit that wins lands exactly once
//     (ticket completes, result scattered); a submit that loses is
//     refused and the client runs the op itself — never lost, never
//     doubled.
// ---------------------------------------------------------------------

const std::vector<std::string> kExecTags = {"exec.submit", "exec.stop"};

std::optional<std::string> exec_body(VirtualScheduler& vs) {
  using Map = store::ShardedMap<CombUc, RangeR>;
  struct Shared {
    MA a;
    Map map;
    store::ShardExecutor<CombUc> exec;
    bool result = false;
    bool ran = false;
    Shared()
        : map(1, a, RangeR{}),
          exec(map, [this]() -> MA& { return a; }) {}
  };
  auto sh = std::make_shared<Shared>();

  vs.spawn([sh] {  // tid 0: client submitting one insert
    using Req = typename CombUc::BatchRequest;
    const Req req{core::OpKind::kInsert, 9, 90};
    store::BatchTicket ticket;
    ticket.arm(1);
    typename store::ShardExecutor<CombUc>::Task task;
    task.reqs = std::span<const Req>(&req, 1);
    task.results = &sh->result;
    task.ticket = &ticket;
    if (sh->exec.submit(0, task)) {
      ticket.join();  // stop() drains queued tasks, so this completes
    } else {
      // Lost the race to stop(): the sync fallback (what Session does).
      typename Map::Session sess(sh->map, sh->a);
      sh->result = sess.insert(9, 90);
    }
    sh->ran = true;
  });
  vs.spawn([sh] {  // tid 1: concurrent shutdown
    sh->exec.stop();
  });
  vs.run();
  if (!sh->ran) return "client never completed";
  if (!sh->result) return "the insert's result was lost or doubled";
  typename Map::Session check(sh->map, sh->a);
  if (!check.contains(9)) return "the submitted insert never landed";
  return std::nullopt;
}

TEST(ModelCheckExec, StopSubmitRaceLosesNoTask) {
  const ExploreResult res =
      verify::sched::explore_exhaustive(6, exec_body, kExecTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GE(res.schedules, 2u);  // both race winners visited
}

// Same race, explored through the lock-free lane's own windows: the
// submit gate, the ring claim/publish pair, the wake, and the stop
// quiesce spin all become decision points. The worker is a real OS
// thread (its yields are no-ops), so this sweeps the logical client and
// stopper against each other across every lane-protocol boundary.
const std::vector<std::string> kExecLaneTags = {
    "exec.submit", "exec.stop", "lane.gate",
    "lane.push",   "lane.wake", "lane.stop"};

TEST(ModelCheckExec, StopSubmitRaceHoldsAcrossTheLaneWindows) {
  const ExploreResult res =
      verify::sched::explore_exhaustive(8, exec_body, kExecLaneTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GT(res.schedules, 10u);
}

// ---------------------------------------------------------------------
// 3e. The shard lane itself (the executor's lock-free submission path).
//     Two protocols, each with a mutant positive control:
//
//     Ring claim/publish — producers race a sequence-stamped slot claim
//     through wraparound on a capacity-2 ring; every element a push
//     accepted must come out exactly once, in per-producer FIFO order.
//     The kSkipSlotSeqCheck mutant claims slots without the stamp check
//     (the classic Vyukov bug): a full ring gets overwritten, the
//     consumer's expected stamp never appears, and the element is gone
//     — the search must find a schedule that loses one.
//
//     Park/wake (Dekker) — the worker reads the publish epoch, checks
//     emptiness, advertises parked_, and re-reads the epoch before
//     sleeping. The invariant: a STANDING park over a non-empty lane
//     always has a wake delivered; otherwise the only thing between the
//     consumer and sleeping forever is the futex word's value compare —
//     a 32-bit epoch that aliases after wrap (the lost-wakeup ABA). The
//     kSkipParkRecheck mutant drops the re-read and the checker must
//     find the naked park.
// ---------------------------------------------------------------------

using store::LaneMutant;

const std::vector<std::string> kLaneRingTags = {"lane.push", "lane.publish",
                                                "lane.spin"};

template <LaneMutant Mutant>
std::optional<std::string> lane_ring_body(VirtualScheduler& vs) {
  struct Shared {
    store::MpscRing<int, Mutant> ring{2};
    int producers_done = 0;                 // logical threads serialize:
    std::vector<int> pushed[2];             // plain fields are race-free
    std::vector<int> popped;
  };
  auto sh = std::make_shared<Shared>();

  const int counts[2] = {2, 1};  // 3 pushes through cap 2 = wraparound
  for (int p = 0; p < 2; ++p) {
    vs.spawn([sh, p, n = counts[p]] {
      for (int i = 0; i < n; ++i) {
        const int v = p * 10 + i;
        for (int attempt = 0; attempt < 8; ++attempt) {
          if (sh->ring.try_push(v)) {
            sh->pushed[p].push_back(v);
            break;
          }
          PC_YIELD("lane.spin");  // full: the consumer must drain first
        }
      }
      ++sh->producers_done;
    });
  }
  vs.spawn([sh] {  // the single consumer
    int idle = 0;
    while (idle < 2) {
      int v = 0;
      if (sh->ring.try_pop(v)) {
        sh->popped.push_back(v);
        idle = 0;
        continue;
      }
      if (sh->producers_done == 2) ++idle;
      PC_YIELD("lane.spin");
    }
  });
  vs.run();

  // Every accepted element out exactly once, per-producer order intact.
  for (int p = 0; p < 2; ++p) {
    std::vector<int> got;
    for (const int v : sh->popped) {
      if (v / 10 == p) got.push_back(v);
    }
    if (got != sh->pushed[p]) {
      return "producer " + std::to_string(p) + " accepted " +
             std::to_string(sh->pushed[p].size()) + " element(s) but " +
             std::to_string(got.size()) + " came out (or out of order)";
    }
  }
  return std::nullopt;
}

TEST(ModelCheckLane, RingKeepsEveryAcceptedElementInFifoOrder) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, lane_ring_body<LaneMutant::kNone>, kLaneRingTags);
  EXPECT_TRUE(res.ok) << "schedule " << res.schedules << ": " << res.reason;
  EXPECT_GT(res.schedules, 100u);
}

TEST(ModelCheckLane, SkippingTheSlotStampCheckLosesAnElement) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, lane_ring_body<LaneMutant::kSkipSlotSeqCheck>, kLaneRingTags);
  ASSERT_FALSE(res.ok) << "the stamp-free claim should lose an element ("
                       << res.schedules << " schedules explored)";
  EXPECT_NE(res.reason.find("came out"), std::string::npos);
  // The found schedule is itself a replayable regression.
  const std::optional<std::string> again = verify::sched::replay_trace(
      res.failing_trace, lane_ring_body<LaneMutant::kSkipSlotSeqCheck>,
      kLaneRingTags);
  EXPECT_TRUE(again.has_value()) << "failing trace did not replay";
}

const std::vector<std::string> kLaneParkTags = {"lane.window", "lane.wake",
                                                "lane.park"};

template <LaneMutant Mutant>
std::optional<std::string> lane_park_body(VirtualScheduler& vs) {
  struct Shared {
    store::ShardLane<int, Mutant> lane{4};
    bool producer_done = false;
    bool got = false;
    std::optional<std::string> fail;
  };
  auto sh = std::make_shared<Shared>();

  vs.spawn([sh] {  // producer: one element, then done
    using Lane = store::ShardLane<int, Mutant>;
    if (sh->lane.try_push(7) != Lane::Push::kOk) {
      sh->fail = "push refused on an idle lane";
    }
    sh->producer_done = true;
  });
  vs.spawn([sh] {  // consumer: the worker's idle protocol
    int v = 0;
    while (!sh->got) {
      const std::uint32_t w = sh->lane.park_epoch();
      if (sh->lane.try_pop(v)) {  // emptiness check AFTER the epoch read
        sh->got = true;
        break;
      }
      PC_YIELD("lane.window");  // the epoch-to-park window under test
      if (!sh->lane.commit_park(w)) continue;  // a publish slipped in
      if (sh->producer_done && sh->lane.approx_size() > 0 &&
          sh->lane.wakes_sent() == 0 && !sh->fail.has_value()) {
        sh->fail = "standing park over a non-empty lane with no wake "
                   "delivered — a futex-epoch wrap away from sleeping "
                   "forever";
      }
      sh->lane.park_wait(w);
    }
  });
  vs.run();
  if (sh->fail.has_value()) return sh->fail;
  if (!sh->got) return "the element was never drained";
  return std::nullopt;
}

TEST(ModelCheckLane, ParkProtocolNeverSleepsOverAPublishedTask) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, lane_park_body<LaneMutant::kNone>, kLaneParkTags);
  EXPECT_TRUE(res.ok) << "schedule " << res.schedules << ": " << res.reason;
  EXPECT_GT(res.schedules, 20u);
}

TEST(ModelCheckLane, DroppingTheParkRecheckReopensTheLostWakeup) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, lane_park_body<LaneMutant::kSkipParkRecheck>, kLaneParkTags);
  ASSERT_FALSE(res.ok) << "the re-read-free park should be caught ("
                       << res.schedules << " schedules explored)";
  EXPECT_NE(res.reason.find("no wake"), std::string::npos);
  const std::optional<std::string> again = verify::sched::replay_trace(
      res.failing_trace, lane_park_body<LaneMutant::kSkipParkRecheck>,
      kLaneParkTags);
  EXPECT_TRUE(again.has_value()) << "failing trace did not replay";
}

// ---------------------------------------------------------------------
// 3f. The batched read path (PR 10). multi_get's contract is that one
//     pinned root answers the whole probe batch: a sweep racing
//     installs must observe exactly one version. The kernel seeds
//     {1:10, 2:90} and lets a writer flip the pair atomically (chained
//     two-op updates = single CAS installs) while a reader multi_gets
//     both keys through the "atom.mget.sweep" window; both-or-neither
//     presence with the sum invariant holds on every schedule iff the
//     sweep never changes roots mid-batch. The mutant positive control
//     re-pins between the two probes — exactly the bug the single-pin
//     design rules out — and the exhaustive search must catch it.
// ---------------------------------------------------------------------

const std::vector<std::string> kReadTags = {"atom.install", "atom.bump",
                                            "atom.mget.sweep"};

// One atomic pair-flip writer against a two-key reader; `torn_reader`
// swaps the single-pin sweep for a pin-per-key mutant.
std::optional<std::string> read_kernel_body(VirtualScheduler& vs,
                                            bool torn_reader) {
  struct Shared {
    MA a;
    Epoch smr;
    FixedAtom atom;
    std::optional<std::string> fail;
    Shared() : atom(smr, a) {}
  };
  auto sh = std::make_shared<Shared>();
  {
    typename FixedAtom::Ctx seed(sh->smr, sh->a);
    sh->atom.update(seed, [](T t, auto& b) {
      return t.insert(b, 1, 10).insert(b, 2, 90);
    });
  }

  vs.spawn([sh, torn_reader] {  // tid 0: the batched reader
    typename FixedAtom::Ctx ctx(sh->smr, sh->a);
    const std::int64_t keys[] = {1, 2};
    typename FixedAtom::ReadOutcome out[2];
    if (torn_reader) {
      // MUTANT: re-pin mid-sweep — each key answered by its own root.
      {
        const auto view = sh->atom.pin_versioned(ctx);
        if (const std::int64_t* v = view.snapshot.find(1)) out[0].value = *v;
      }
      PC_YIELD("atom.mget.sweep");
      {
        const auto view = sh->atom.pin_versioned(ctx);
        if (const std::int64_t* v = view.snapshot.find(2)) out[1].value = *v;
      }
    } else {
      sh->atom.multi_get(ctx, std::span<const std::int64_t>(keys, 2),
                         std::span<typename FixedAtom::ReadOutcome>(out, 2));
    }
    if (out[0].present() != out[1].present()) {
      sh->fail = "multi_get saw a half-present pair: two roots in one sweep";
    } else if (out[0].present() && *out[0].value + *out[1].value != 100) {
      sh->fail = "multi_get blended values from two versions";
    }
  });
  vs.spawn([sh] {  // tid 1: atomic pair flips (one install each)
    typename FixedAtom::Ctx ctx(sh->smr, sh->a);
    sh->atom.update(ctx,
                    [](T t, auto& b) { return t.erase(b, 1).erase(b, 2); });
    sh->atom.update(ctx, [](T t, auto& b) {
      return t.insert(b, 1, 33).insert(b, 2, 67);
    });
  });
  vs.run();
  return sh->fail;
}

TEST(ModelCheckRead, MultiGetObservesExactlyOneRootAcrossInstalls) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, [](VirtualScheduler& vs) { return read_kernel_body(vs, false); },
      kReadTags);
  EXPECT_TRUE(res.ok) << "schedule " << res.schedules << ": " << res.reason;
  EXPECT_GT(res.schedules, 20u);
}

TEST(ModelCheckRead, RePinningMidSweepIsCaught) {
  const ExploreResult res = verify::sched::explore_exhaustive(
      10, [](VirtualScheduler& vs) { return read_kernel_body(vs, true); },
      kReadTags);
  ASSERT_FALSE(res.ok) << "the pin-per-key mutant should tear (" //
                       << res.schedules << " schedules explored)";
  EXPECT_NE(res.reason.find("two"), std::string::npos);
  // The found schedule is itself a replayable regression.
  const std::optional<std::string> again = verify::sched::replay_trace(
      res.failing_trace,
      [](VirtualScheduler& vs) { return read_kernel_body(vs, true); },
      kReadTags);
  EXPECT_TRUE(again.has_value()) << "failing trace did not replay";
}

// The read-task drain window end to end: a client's probe ticket racing
// executor shutdown either rides the lane (the worker's merged
// pin → sweep → scatter path, exec_read_merged) or is refused and falls
// back to the session's synchronous sweep — the answer arrives exactly
// once either way. The worker is a real OS thread, so its
// "exec.read.sweep"/"exec.read.scatter" yields are pass-throughs here;
// the race is explored from the client and stopper sides.
const std::vector<std::string> kExecReadTags = {"exec.submit", "exec.stop",
                                                "ticket.join"};

std::optional<std::string> exec_read_body(VirtualScheduler& vs) {
  using Map = store::ShardedMap<CombUc, RangeR>;
  struct Shared {
    MA a;
    Map map;
    store::ShardExecutor<CombUc> exec;
    typename CombUc::ReadOutcome out;
    bool ran = false;
    Shared()
        : map(1, a, RangeR{}),
          exec(map, [this]() -> MA& { return a; }) {}
  };
  auto sh = std::make_shared<Shared>();
  {
    typename Map::Session seed(sh->map, sh->a);
    if (!seed.insert(9, 90)) return "pre-seed failed";
  }

  vs.spawn([sh] {  // tid 0: client probing key 9
    static constexpr std::int64_t kKey = 9;
    store::BatchTicket ticket;
    ticket.arm(1);
    typename store::ShardExecutor<CombUc>::Task task;
    task.keys = std::span<const std::int64_t>(&kKey, 1);
    task.read_results = &sh->out;
    task.ticket = &ticket;
    if (sh->exec.submit(0, task)) {
      ticket.join();  // stop() drains queued tasks, so this completes
    } else {
      // Lost the race to stop(): the session's sync fallback.
      typename Map::Session sess(sh->map, sh->a);
      typename Map::ReadOutcome o[1];
      sess.multi_get(std::span<const std::int64_t>(&kKey, 1),
                     std::span<typename Map::ReadOutcome>(o, 1));
      sh->out = o[0];
    }
    sh->ran = true;
  });
  vs.spawn([sh] {  // tid 1: concurrent shutdown
    sh->exec.stop();
  });
  vs.run();
  if (!sh->ran) return "client never completed";
  if (!sh->out.present()) return "the probe's answer was lost";
  if (*sh->out.value != 90) return "the probe answered a wrong value";
  return std::nullopt;
}

TEST(ModelCheckRead, StopSubmitRaceLosesNoProbe) {
  const ExploreResult res =
      verify::sched::explore_exhaustive(6, exec_read_body, kExecReadTags);
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_GE(res.schedules, 2u);  // both race winners visited
}

// ---------------------------------------------------------------------
// 4. Seeded random-walk smoke over the fixed protocols — the entry
//    point scripts/check.sh time-boxes. PATHCOPY_MC_SEED=<n> overrides
//    the base seed; a failure prints the walk's seed, and
//    replay_seed(seed, ...) reproduces the schedule from it alone.
// ---------------------------------------------------------------------

TEST(ModelCheckSmoke, RandomWalksOverTheFixedProtocols) {
  std::uint64_t seed0 = 0xC0FFEE;
  if (const char* env = std::getenv("PATHCOPY_MC_SEED")) {
    seed0 = std::strtoull(env, nullptr, 0);
  }
  const ExploreResult kernel = verify::sched::explore_random(
      seed0, 64, 12, atom_kernel_body<FixedAtom>, kAtomKernelTags);
  EXPECT_TRUE(kernel.ok) << "kernel walk failed; reproduce with "
                         << "PATHCOPY_MC_SEED, failing seed="
                         << kernel.failing_seed << ": " << kernel.reason;
  const ExploreResult window = verify::sched::explore_random(
      seed0 ^ 0x5EED, 64, 12, atom_window_body<FixedAtom>, kWindowTags);
  EXPECT_TRUE(window.ok) << "window walk failed; failing seed="
                         << window.failing_seed << ": " << window.reason;
  const ExploreResult gate = verify::sched::explore_random(
      seed0 ^ 0x6A7E, 24, 10, gate_body, kGateTags);
  EXPECT_TRUE(gate.ok) << "gate walk failed; failing seed="
                       << gate.failing_seed << ": " << gate.reason;
  const ExploreResult ring = verify::sched::explore_random(
      seed0 ^ 0x1A4E, 64, 10, lane_ring_body<LaneMutant::kNone>,
      kLaneRingTags);
  EXPECT_TRUE(ring.ok) << "lane-ring walk failed; failing seed="
                       << ring.failing_seed << ": " << ring.reason;
  const ExploreResult park = verify::sched::explore_random(
      seed0 ^ 0x9A2C, 64, 10, lane_park_body<LaneMutant::kNone>,
      kLaneParkTags);
  EXPECT_TRUE(park.ok) << "lane-park walk failed; failing seed="
                       << park.failing_seed << ": " << park.reason;
  const ExploreResult read = verify::sched::explore_random(
      seed0 ^ 0x4EAD, 64, 10,
      [](VirtualScheduler& vs) { return read_kernel_body(vs, false); },
      kReadTags);
  EXPECT_TRUE(read.ok) << "read-kernel walk failed; failing seed="
                       << read.failing_seed << ": " << read.reason;
}

}  // namespace
}  // namespace pathcopy
