// One battery, every ordered structure: the same semantic contract runs
// against Treap, AVL, weight-balanced, red-black, external BST and two
// B+tree fanouts through a typed test suite. Surface differences (node-
// pointer vs key-pointer accessors, optional floor/ceiling) are bridged
// with `if constexpr (requires ...)` so each structure is tested exactly
// as far as its API goes — no copy-paste per structure, no weakened
// checks for the structures that do support an operation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

// ----- API bridges -----

template <class DS>
const std::int64_t* min_key_of(const DS& t) {
  if constexpr (requires { t.min_key(); }) {
    return t.min_key();
  } else if constexpr (requires { t.min_node(); }) {
    const auto* n = t.min_node();
    return n == nullptr ? nullptr : &n->key;
  } else {
    const auto* n = t.min_leaf();
    return n == nullptr ? nullptr : &n->key;
  }
}

template <class DS>
const std::int64_t* max_key_of(const DS& t) {
  if constexpr (requires { t.max_key(); }) {
    return t.max_key();
  } else if constexpr (requires { t.max_node(); }) {
    const auto* n = t.max_node();
    return n == nullptr ? nullptr : &n->key;
  } else {
    const auto* n = t.max_leaf();
    return n == nullptr ? nullptr : &n->key;
  }
}

template <class DS>
const std::int64_t* kth_key_of(const DS& t, std::size_t i) {
  if constexpr (requires { t.kth_key(i); }) {
    return t.kth_key(i);
  } else {
    const auto* n = t.kth(i);
    return n == nullptr ? nullptr : &n->key;
  }
}

template <class DS, class Alloc>
DS insert_all(Alloc& al, DS t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(al, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

std::vector<std::int64_t> shuffled_iota(std::int64_t n, std::uint64_t seed) {
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < n; ++i) keys.push_back(i);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.below(i)]);
  }
  return keys;
}

template <class DS>
class OrderedApi : public ::testing::Test {};

using Structures =
    ::testing::Types<persist::Treap<std::int64_t, std::int64_t>,
                     persist::AvlTree<std::int64_t, std::int64_t>,
                     persist::WbTree<std::int64_t, std::int64_t>,
                     persist::RbTree<std::int64_t, std::int64_t>,
                     persist::ExternalBst<std::int64_t, std::int64_t>,
                     persist::BTree<std::int64_t, std::int64_t, 8>,
                     persist::BTree<std::int64_t, std::int64_t, 64>>;
TYPED_TEST_SUITE(OrderedApi, Structures);

TYPED_TEST(OrderedApi, EmptyTreeEdgeCases) {
  TypeParam t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(42), nullptr);
  EXPECT_FALSE(t.contains(42));
  EXPECT_EQ(min_key_of(t), nullptr);
  EXPECT_EQ(max_key_of(t), nullptr);
  EXPECT_EQ(kth_key_of(t, 0), nullptr);
  EXPECT_EQ(t.rank(0), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_TRUE(t.items().empty());
}

TYPED_TEST(OrderedApi, SingleElementLifecycle) {
  alloc::Arena a;
  TypeParam t;
  t = test::apply(a, [&](auto& b) { return t.insert(b, 7, 70); });
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(7), 70);
  EXPECT_EQ(*min_key_of(t), 7);
  EXPECT_EQ(*max_key_of(t), 7);
  EXPECT_EQ(*kth_key_of(t, 0), 7);
  EXPECT_TRUE(t.check_invariants());
  t = test::apply(a, [&](auto& b) { return t.erase(b, 7); });
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.check_invariants());
}

TYPED_TEST(OrderedApi, DuplicateInsertAndAbsentEraseKeepRoot) {
  alloc::Arena a;
  TypeParam t = insert_all(a, TypeParam{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.insert(b, 2, 0).root_ptr(), t.root_ptr());
  EXPECT_EQ(t.erase(b, 9).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TYPED_TEST(OrderedApi, InsertOrAssignReplacesWithoutGrowth) {
  alloc::Arena a;
  TypeParam t = insert_all(a, TypeParam{}, {1, 2, 3});
  TypeParam t2 =
      test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, -5); });
  EXPECT_EQ(*t2.find(2), -5);
  EXPECT_EQ(*t.find(2), 20);  // old version untouched
  EXPECT_EQ(t2.size(), 3u);
  EXPECT_TRUE(t2.check_invariants());
}

TYPED_TEST(OrderedApi, ItemsSortedAndComplete) {
  alloc::Arena a;
  const auto keys = shuffled_iota(512, 17);
  TypeParam t = insert_all(a, TypeParam{}, keys);
  const auto items = t.items();
  ASSERT_EQ(items.size(), 512u);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].first, static_cast<std::int64_t>(i));
    EXPECT_EQ(items[i].second, static_cast<std::int64_t>(i) * 10);
  }
}

TYPED_TEST(OrderedApi, RankKthRoundTrip) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 200; ++i) keys.push_back(i * 7 + 3);
  TypeParam t = insert_all(a, TypeParam{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(kth_key_of(t, i), nullptr);
    EXPECT_EQ(*kth_key_of(t, i), keys[i]);
    EXPECT_EQ(t.rank(keys[i]), i);
  }
  EXPECT_EQ(kth_key_of(t, keys.size()), nullptr);
}

TYPED_TEST(OrderedApi, OptionalRangeQueriesMatchOracle) {
  alloc::Arena a;
  util::Xoshiro256 rng(29);
  std::map<std::int64_t, std::int64_t> oracle;
  TypeParam t;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t k = rng.range(-200, 200);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
    oracle.emplace(k, k);
  }
  if constexpr (requires { t.count_range(0, 1); }) {
    for (int probe = 0; probe < 50; ++probe) {
      const std::int64_t lo = rng.range(-220, 220);
      const std::int64_t hi = rng.range(-220, 220);
      const std::size_t expect =
          hi > lo ? static_cast<std::size_t>(std::distance(
                        oracle.lower_bound(lo), oracle.lower_bound(hi)))
                  : 0u;
      ASSERT_EQ(t.count_range(lo, hi), expect)
          << "[" << lo << ", " << hi << ")";
    }
  }
  if constexpr (requires { t.ceiling_node(0); }) {
    for (int probe = 0; probe < 50; ++probe) {
      const std::int64_t q = rng.range(-220, 220);
      const auto it = oracle.lower_bound(q);
      const auto* n = t.ceiling_node(q);
      if (it == oracle.end()) {
        ASSERT_EQ(n, nullptr);
      } else {
        ASSERT_NE(n, nullptr);
        ASSERT_EQ(n->key, it->first);
      }
    }
  }
  if constexpr (requires { t.ceiling_key(0); }) {
    for (int probe = 0; probe < 50; ++probe) {
      const std::int64_t q = rng.range(-220, 220);
      const auto it = oracle.lower_bound(q);
      const auto* k = t.ceiling_key(q);
      if (it == oracle.end()) {
        ASSERT_EQ(k, nullptr);
      } else {
        ASSERT_NE(k, nullptr);
        ASSERT_EQ(*k, it->first);
      }
    }
  }
}

TYPED_TEST(OrderedApi, FuzzAgainstOracleWithInvariants) {
  alloc::Arena a;
  TypeParam t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = rng.range(-100, 100);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    ASSERT_EQ(t.contains(k), oracle.contains(k));
    if (i % 200 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  ASSERT_TRUE(t.check_invariants());
  const auto items = t.items();
  ASSERT_EQ(items.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ++i;
  }
}

TYPED_TEST(OrderedApi, VersionChainStaysIntact) {
  // Persistence across a chain of versions: every fifth version is
  // retained with its expected contents and re-verified at the end.
  alloc::Arena a;
  TypeParam t;
  std::vector<TypeParam> versions;
  std::vector<std::size_t> sizes;
  for (std::int64_t k = 0; k < 200; ++k) {
    core::Builder<alloc::Arena> b(a);
    t = t.insert(b, k * 3, k);
    b.seal();
    (void)b.commit();  // keep superseded nodes alive: old versions use them
    if (k % 5 == 0) {
      versions.push_back(t);
      sizes.push_back(t.size());
    }
  }
  for (std::size_t i = 0; i < versions.size(); ++i) {
    ASSERT_EQ(versions[i].size(), sizes[i]);
    ASSERT_TRUE(versions[i].check_invariants());
    // Spot-check contents: version i contains exactly keys 0..5i (*3).
    ASSERT_TRUE(versions[i].contains(0));
    ASSERT_EQ(versions[i].contains(static_cast<std::int64_t>(i) * 5 * 3 + 3),
              false);
  }
}

TYPED_TEST(OrderedApi, SharingAfterOneInsertIsPathLocal) {
  alloc::Arena a;
  TypeParam t = insert_all(a, TypeParam{}, shuffled_iota(2048, 7));
  core::Builder<alloc::Arena> b(a);
  TypeParam t2 = t.insert(b, 99999, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = TypeParam::shared_nodes(t, t2);
  // The unshared remainder is the copied path (+ rebalance fan-out, +
  // leaf width for the B+tree) — generously bounded by 64 entries plus
  // 8 per level.
  EXPECT_GE(shared, t.size() - 64 - 8 * t.height());
}

TYPED_TEST(OrderedApi, WorksThroughTheUniversalConstruction) {
  // Every ordered structure must plug into the Atom unchanged: disjoint
  // concurrent inserts all land, invariants hold, teardown frees all.
  alloc::MallocAlloc a;
  constexpr int kThreads = 3;
  constexpr std::int64_t kPerThread = 400;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<TypeParam, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::Atom<TypeParam, reclaim::EpochReclaimer,
                            alloc::MallocAlloc>::Ctx ctx(smr, a);
        for (std::int64_t i = 0; i < kPerThread; ++i) {
          const std::int64_t key = w * kPerThread + i;
          const auto r = atom.update(ctx, [key](TypeParam t, auto& b) {
            return t.insert(b, key, key);
          });
          ASSERT_EQ(r, core::UpdateResult::kInstalled);
        }
      });
    }
    for (auto& w : workers) w.join();
    typename core::Atom<TypeParam, reclaim::EpochReclaimer,
                        alloc::MallocAlloc>::Ctx ctx(smr, a);
    EXPECT_EQ(atom.read(ctx, [](TypeParam t) { return t.size(); }),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_TRUE(
        atom.read(ctx, [](TypeParam t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(OrderedApi, DestroyReclaimsEveryNode) {
  alloc::MallocAlloc a;
  TypeParam t;
  for (std::int64_t k = 0; k < 128; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_GT(a.stats().live_blocks(), 0u);
  TypeParam::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
