// Payload and robustness coverage: non-trivial value types whose
// destructors must run exactly once through the reclamation pipeline,
// custom comparators, and allocation-failure injection.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "persist/avl.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "test_support.hpp"

namespace pathcopy {
namespace {

// ---------------------------------------------------------------------
// Non-trivial payloads: destructor accounting.
// ---------------------------------------------------------------------

struct Counted {
  static std::atomic<int> live;
  std::int64_t v = 0;

  Counted() { live.fetch_add(1); }
  explicit Counted(std::int64_t x) : v(x) { live.fetch_add(1); }
  Counted(const Counted& o) : v(o.v) { live.fetch_add(1); }
  Counted& operator=(const Counted&) = default;
  ~Counted() { live.fetch_sub(1); }
};
std::atomic<int> Counted::live{0};

TEST(Payloads, DestructorsRunThroughRetirePipeline) {
  using T = persist::Treap<std::int64_t, Counted>;
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
    for (std::int64_t i = 0; i < 500; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, Counted{i}); });
    }
    for (std::int64_t i = 0; i < 250; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.erase(b, i); });
    }
    smr.drain_all();
    // Exactly the surviving 250 nodes hold payloads.
    EXPECT_EQ(Counted::live.load(), 250);
  }
  EXPECT_EQ(Counted::live.load(), 0);  // teardown destroyed the rest
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Payloads, StringValuesSurviveVersionChurn) {
  using T = persist::Treap<std::int64_t, std::string>;
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
    for (std::int64_t i = 0; i < 200; ++i) {
      const std::string v = "value-" + std::to_string(i) +
                            std::string(64, 'x');  // beyond SSO
      atom.update(ctx, [&](T t, auto& b) { return t.insert(b, i, v); });
    }
    for (std::int64_t i = 0; i < 200; i += 2) {
      atom.update(ctx, [&](T t, auto& b) {
        return t.insert_or_assign(b, i, "rewritten-" + std::to_string(i));
      });
    }
    EXPECT_EQ(atom.read(ctx, [](T t) { return *t.find(4); }), "rewritten-4");
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.find(5)->substr(0, 7); }),
              "value-5");
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Payloads, StringKeysOrderCorrectly) {
  using T = persist::Treap<std::string, int>;
  alloc::MallocAlloc a;
  T t;
  for (const char* k : {"pear", "apple", "fig", "banana", "date"}) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, std::string(k), 1); });
  }
  std::vector<std::string> keys;
  t.for_each([&](const std::string& k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "date", "fig",
                                            "pear"}));
  EXPECT_TRUE(t.check_invariants());
  T::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ---------------------------------------------------------------------
// Custom comparators.
// ---------------------------------------------------------------------

TEST(Comparators, ReverseOrderTreap) {
  using T = persist::Treap<std::int64_t, std::int64_t, std::greater<std::int64_t>>;
  alloc::MallocAlloc a;
  T t;
  for (const std::int64_t k : {3, 1, 4, 1, 5}) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.min_node()->key, 5);  // "min" under greater<> is the largest
  EXPECT_EQ(t.max_node()->key, 1);
  std::vector<std::int64_t> keys;
  t.for_each([&](const std::int64_t& k, const std::int64_t&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{5, 4, 3, 1}));
  EXPECT_TRUE(t.check_invariants());
  T::destroy(t.root_node(), a);
}

TEST(Comparators, ReverseOrderAvl) {
  using A = persist::AvlTree<std::int64_t, std::int64_t, std::greater<std::int64_t>>;
  alloc::MallocAlloc a;
  A t;
  for (std::int64_t k = 0; k < 64; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.kth(0)->key, 63);
  EXPECT_EQ(t.kth(63)->key, 0);
  A::destroy(t.root_node(), a);
}

// ---------------------------------------------------------------------
// Allocation-failure injection: an attempt that throws mid-build must
// roll back completely (builder destructor) and leak nothing.
// ---------------------------------------------------------------------

class FlakyAlloc {
 public:
  using RetireBackend = alloc::MallocAlloc;

  explicit FlakyAlloc(alloc::MallocAlloc& base, int fail_after)
      : base_(&base), remaining_(fail_after) {}

  void* allocate(std::size_t bytes, std::size_t align) {
    if (remaining_ == 0) throw std::bad_alloc{};
    --remaining_;
    return base_->allocate(bytes, align);
  }
  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    base_->deallocate(p, bytes, align);
  }
  RetireBackend* retire_backend() noexcept { return base_; }
  void refill(int n) noexcept { remaining_ = n; }

 private:
  alloc::MallocAlloc* base_;
  int remaining_;
};

TEST(FailureInjection, MidBuildThrowRollsBackCleanly) {
  using T = persist::Treap<std::int64_t, std::int64_t>;
  alloc::MallocAlloc base;
  FlakyAlloc flaky(base, 1 << 20);

  T t;
  for (std::int64_t i = 0; i < 300; ++i) {
    t = test::apply(flaky, [&](auto& b) { return t.insert(b, i, i); });
  }
  const auto live_before = base.stats().live_blocks();

  // Now make every insert attempt die partway through its path copy.
  for (int budget = 0; budget < 12; ++budget) {
    flaky.refill(budget);
    bool threw = false;
    try {
      core::Builder<FlakyAlloc> b(flaky);
      T next = t.insert(b, 100000 + budget, 0);
      b.seal();
      auto retired = b.commit();
      reclaim::run_all(retired);
      t = next;  // the attempt landed: adopt the new version
    } catch (const std::bad_alloc&) {
      threw = true;  // builder destructor rolled the attempt back
    }
    if (budget < 2) EXPECT_TRUE(threw);  // a path copy needs several nodes
    flaky.refill(1 << 20);
    ASSERT_EQ(base.stats().live_blocks(), live_before + (threw ? 0 : 1));
    if (!threw) {
      // The insert landed; remove it to restore the baseline.
      t = test::apply(flaky, [&](auto& b2) { return t.erase(b2, 100000 + budget); });
    }
    ASSERT_TRUE(t.check_invariants());
    ASSERT_EQ(t.size(), 300u);
  }
  T::destroy(t.root_node(), base);
  EXPECT_EQ(base.stats().live_blocks(), 0u);
}

TEST(FailureInjection, ThrowInsideAtomUpdatePropagatesWithoutLeak) {
  using T = persist::Treap<std::int64_t, std::int64_t>;
  alloc::MallocAlloc base;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *base.retire_backend());
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, base);
    for (std::int64_t i = 0; i < 100; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, i); });
    }
    EXPECT_THROW(atom.update(ctx,
                             [](T, auto&) -> T {
                               throw std::runtime_error("user code failed");
                             }),
                 std::runtime_error);
    // The atom is untouched and fully operational.
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 100u);
    atom.update(ctx, [](T t, auto& b) { return t.insert(b, 12345, 1); });
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 101u);
  }
  EXPECT_EQ(base.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
