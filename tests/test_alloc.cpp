#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <unordered_set>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "reclaim/retired.hpp"

namespace pathcopy {
namespace {

TEST(MallocAlloc, RoundTripAndCounters) {
  alloc::MallocAlloc a;
  void* p = a.allocate(64, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 64);
  EXPECT_EQ(a.stats().allocs.load(), 1u);
  EXPECT_EQ(a.stats().live_blocks(), 1u);
  a.deallocate(p, 64, 8);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
  EXPECT_EQ(a.stats().bytes_allocated.load(), 64u);
  EXPECT_EQ(a.stats().bytes_freed.load(), 64u);
}

TEST(MallocAlloc, RetireBackendIsSelf) {
  alloc::MallocAlloc a;
  EXPECT_EQ(a.retire_backend(), &a);
}

TEST(MallocAlloc, FreeBytesMatchesDeallocate) {
  alloc::MallocAlloc a;
  void* p = a.allocate(32, 8);
  a.free_bytes(p, 32, 8);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(MallocAlloc, OverAlignedAllocation) {
  alloc::MallocAlloc a;
  void* p = a.allocate(128, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  a.deallocate(p, 128, 64);
}

TEST(Arena, BumpAllocationsAreDistinct) {
  alloc::Arena arena;
  std::unordered_set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = arena.allocate(48, 8);
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(Arena, RecycleReusesBlock) {
  alloc::Arena arena;
  void* p = arena.allocate(48, 8);
  arena.deallocate(p, 48, 8);
  void* q = arena.allocate(48, 8);
  EXPECT_EQ(p, q);  // same size class comes back from the recycle list
}

TEST(Arena, DifferentSizeClassesDoNotMix) {
  alloc::Arena arena;
  void* p = arena.allocate(16, 8);
  arena.deallocate(p, 16, 8);
  void* q = arena.allocate(480, 8);
  EXPECT_NE(p, q);
}

TEST(Arena, GrowsBeyondOneBlock) {
  alloc::Arena arena;
  // Each allocation is 1 KiB; 2048 of them exceed one 1 MiB slab.
  for (int i = 0; i < 2048; ++i) {
    ASSERT_NE(arena.allocate(1024, 8), nullptr);
  }
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(Arena, HugeAllocationGetsOwnBlock) {
  alloc::Arena arena;
  void* p = arena.allocate(4 << 20, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 4 << 20);
}

TEST(Arena, ResetDropsBlocks) {
  alloc::Arena arena;
  arena.allocate(1024, 8);
  EXPECT_GE(arena.block_count(), 1u);
  arena.reset();
  EXPECT_EQ(arena.block_count(), 0u);
  // Usable again after reset.
  EXPECT_NE(arena.allocate(64, 8), nullptr);
}

TEST(Arena, RetireBackendFreeIsNoOpButCounts) {
  alloc::Arena arena;
  void* p = arena.allocate(64, 8);
  arena.retire_backend()->free_bytes(p, 64, 8);
  EXPECT_EQ(arena.retire_backend()->stats().frees.load(), 1u);
  // Memory still readable: arena memory lives until reset.
  std::memset(p, 0x5a, 64);
}

TEST(Pool, ClassOfRoundsUp) {
  EXPECT_EQ(alloc::PoolBackend::class_of(1), 0u);
  EXPECT_EQ(alloc::PoolBackend::class_of(16), 0u);
  EXPECT_EQ(alloc::PoolBackend::class_of(17), 1u);
  EXPECT_EQ(alloc::PoolBackend::class_of(512), 31u);
  EXPECT_EQ(alloc::PoolBackend::class_bytes(0), 16u);
  EXPECT_EQ(alloc::PoolBackend::class_bytes(31), 512u);
}

TEST(Pool, AllocateFreeReuses) {
  alloc::PoolBackend pool;
  alloc::PoolView view(pool);
  void* p = view.allocate(48, 8);
  view.deallocate(p, 48, 8);
  void* q = view.allocate(48, 8);
  EXPECT_EQ(p, q);
}

TEST(Pool, OversizeFallsBackToNew) {
  alloc::PoolBackend pool;
  alloc::PoolView view(pool);
  void* p = view.allocate(4096, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, 4096);
  view.deallocate(p, 4096, 8);
}

TEST(Pool, PopBatchCarvesWhenEmpty) {
  alloc::PoolBackend pool;
  void* items[32];
  const std::size_t got = pool.pop_batch(2, items, 32);
  EXPECT_EQ(got, 32u);
  std::unordered_set<void*> seen(items, items + 32);
  EXPECT_EQ(seen.size(), 32u);
  pool.push_batch(2, items, 32);
  // Popping again returns the pushed blocks.
  void* again[32];
  EXPECT_EQ(pool.pop_batch(2, again, 32), 32u);
}

TEST(Pool, LockCounterAdvances) {
  alloc::PoolBackend pool;
  alloc::PoolView view(pool);
  const auto before = pool.lock_acquisitions();
  void* p = view.allocate(32, 8);
  view.deallocate(p, 32, 8);
  EXPECT_GE(pool.lock_acquisitions(), before + 2);
}

TEST(Pool, ConcurrentHammering) {
  alloc::PoolBackend pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool] {
      alloc::PoolView view(pool);
      std::vector<void*> held;
      held.reserve(64);
      for (int i = 0; i < kIters; ++i) {
        held.push_back(view.allocate(48, 8));
        if (held.size() == 64) {
          for (void* p : held) view.deallocate(p, 48, 8);
          held.clear();
        }
      }
      for (void* p : held) view.deallocate(p, 48, 8);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.stats().live_blocks(), 0u);
}

TEST(ThreadCache, AllocWithinMagazineAvoidsBackendLocks) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  void* p = cache.allocate(48, 8);  // first allocation pulls one batch
  const auto locks_after_refill = pool.lock_acquisitions();
  cache.deallocate(p, 48, 8);
  for (int i = 0; i < 32; ++i) {
    void* q = cache.allocate(48, 8);
    cache.deallocate(q, 48, 8);
  }
  EXPECT_EQ(pool.lock_acquisitions(), locks_after_refill);
}

TEST(ThreadCache, HighWaterFlushesHalf) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  std::vector<void*> blocks;
  // kHighWater+1 frees trigger exactly one push_batch.
  for (std::size_t i = 0; i <= alloc::ThreadCache::kHighWater; ++i) {
    blocks.push_back(cache.allocate(48, 8));
  }
  for (void* p : blocks) cache.deallocate(p, 48, 8);
  // Everything is accounted for between cache and backend.
  cache.flush();
  EXPECT_EQ(cache.stats().live_blocks(), 0u);
}

TEST(ThreadCache, OversizeBypassesMagazines) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  void* p = cache.allocate(2048, 8);
  ASSERT_NE(p, nullptr);
  cache.deallocate(p, 2048, 8);
}

TEST(ThreadCache, TwoCachesShareBackend) {
  alloc::PoolBackend pool;
  void* p = nullptr;
  {
    alloc::ThreadCache c1(pool);
    p = c1.allocate(48, 8);
    c1.deallocate(p, 48, 8);
  }  // c1 flush returns the block to the pool
  alloc::ThreadCache c2(pool);
  // c2 can obtain blocks previously cached by c1 (through the backend).
  std::unordered_set<void*> seen;
  bool found = false;
  for (int i = 0; i < 200 && !found; ++i) {
    found = (c2.allocate(48, 8) == p);
  }
  EXPECT_TRUE(found);
}

TEST(ThreadCache, ConcurrentCaches) {
  alloc::PoolBackend pool;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool] {
      alloc::ThreadCache cache(pool);
      std::vector<void*> held;
      for (int i = 0; i < 20000; ++i) {
        held.push_back(cache.allocate(64, 8));
        if (held.size() == 100) {
          for (void* p : held) cache.deallocate(p, 64, 8);
          held.clear();
        }
      }
      for (void* p : held) cache.deallocate(p, 64, 8);
    });
  }
  for (auto& w : workers) w.join();
}

TEST(Pool, FreeBatchIsOneLockedTrip) {
  alloc::PoolBackend pool;
  void* items[16];
  ASSERT_EQ(pool.pop_batch(alloc::PoolBackend::class_of(48), items, 16), 16u);
  const auto locks_before = pool.lock_acquisitions();
  pool.free_batch(items, 16, 48, 8);
  EXPECT_EQ(pool.lock_acquisitions(), locks_before + 1);  // one trip for 16
  // The blocks are reusable: pop them back out.
  void* again[16];
  EXPECT_EQ(pool.pop_batch(alloc::PoolBackend::class_of(48), again, 16), 16u);
}

TEST(Pool, FreeBatchOversizeFallsBackPerBlock) {
  alloc::PoolBackend pool;
  alloc::PoolView view(pool);
  void* items[3];
  for (void*& p : items) p = view.allocate(4096, 8);
  pool.free_batch(items, 3, 4096, 8);
  EXPECT_EQ(pool.stats().live_blocks(), 0u);
}

TEST(ThreadCache, AcceptRetiredFillsMagazineWithoutBackendTrips) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  // Prime the size class so the magazine exists and the refill trip is
  // already paid for.
  void* warm = cache.allocate(48, 8);
  cache.deallocate(warm, 48, 8);
  // Stage "retired" blocks straight from the backend (as a bundle free
  // would after running destructors).
  void* retired[8];
  ASSERT_EQ(pool.pop_batch(alloc::PoolBackend::class_of(48), retired, 8), 8u);
  const auto locks_before = pool.lock_acquisitions();
  EXPECT_TRUE(cache.accept_retired(&pool, retired, 8, 48, 8));
  EXPECT_EQ(pool.lock_acquisitions(), locks_before);  // zero backend trips
  EXPECT_EQ(cache.stats().recycled.load(), 8u);
  // Retire-then-alloc reuse: the next allocations come from the absorbed
  // blocks (LIFO magazine order), still without touching the backend.
  std::unordered_set<void*> absorbed(retired, retired + 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(absorbed.count(cache.allocate(48, 8)) == 1);
  }
  EXPECT_EQ(pool.lock_acquisitions(), locks_before);
}

TEST(ThreadCache, AcceptRetiredRefusesForeignBackendAndOversize) {
  alloc::PoolBackend pool;
  alloc::PoolBackend other;
  alloc::ThreadCache cache(pool);
  void* blocks[2];
  ASSERT_EQ(pool.pop_batch(alloc::PoolBackend::class_of(48), blocks, 2), 2u);
  // Wrong backend: the blocks belong to `pool`, the sink must refuse so
  // they flow through `other`'s own free path... and vice versa here.
  EXPECT_FALSE(cache.accept_retired(&other, blocks, 2, 48, 8));
  // Oversize class: magazines only hold pooled classes.
  EXPECT_FALSE(cache.accept_retired(&pool, blocks, 2, 4096, 8));
  EXPECT_EQ(cache.stats().recycled.load(), 0u);
  pool.free_batch(blocks, 2, 48, 8);
}

TEST(ThreadCache, AcceptRetiredPastHighWaterFlushesBatched) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  // Absorb 2*kHighWater retired blocks: the magazine must flush older
  // halves in kBatch-sized push_batch trips, never overflow.
  constexpr std::size_t kN = 2 * alloc::ThreadCache::kHighWater;
  std::vector<void*> retired(kN);
  ASSERT_EQ(pool.pop_batch(alloc::PoolBackend::class_of(64), retired.data(), kN),
            kN);
  const auto locks_before = pool.lock_acquisitions();
  EXPECT_TRUE(cache.accept_retired(&pool, retired.data(), kN, 64, 8));
  const auto flush_trips = pool.lock_acquisitions() - locks_before;
  // Absorbing kN into a kHighWater magazine flushes the older half
  // (kBatch blocks) each time the magazine refills: (kN - kHighWater) /
  // kBatch trips — batched, never per-block.
  EXPECT_EQ(flush_trips,
            (kN - alloc::ThreadCache::kHighWater) / alloc::ThreadCache::kBatch);
  cache.flush();
}

namespace {
struct RetireProbe {
  static int destroyed;
  std::uint64_t payload = 0;
  ~RetireProbe() { ++destroyed; }
};
int RetireProbe::destroyed = 0;
}  // namespace

TEST(RetireSink, FreeAllRoutesBundleIntoSinkMagazines) {
  alloc::PoolBackend pool;
  alloc::ThreadCache cache(pool);
  RetireProbe::destroyed = 0;
  // Build a bundle of same-class retired nodes, as a winning writer's
  // commit() would.
  std::vector<reclaim::Retired> bundle;
  for (int i = 0; i < 12; ++i) {
    void* raw = pool.allocate(sizeof(RetireProbe), alignof(RetireProbe));
    bundle.push_back(reclaim::make_retired(new (raw) RetireProbe, &pool));
  }
  const reclaim::RetireSink sink = cache.retire_sink();
  const auto locks_before = pool.lock_acquisitions();
  reclaim::free_all(bundle, &sink);
  EXPECT_TRUE(bundle.empty());
  EXPECT_EQ(RetireProbe::destroyed, 12);        // destructors all ran
  EXPECT_EQ(pool.lock_acquisitions(), locks_before);  // absorbed, no trips
  EXPECT_EQ(cache.stats().recycled.load(), 12u);
  // The recycled bytes are immediately allocatable from this thread.
  void* p = cache.allocate(sizeof(RetireProbe), alignof(RetireProbe));
  EXPECT_NE(p, nullptr);
  cache.deallocate(p, sizeof(RetireProbe), alignof(RetireProbe));
}

TEST(RetireSink, FreeAllWithoutSinkUsesOneBackendTripPerClass) {
  alloc::PoolBackend pool;
  RetireProbe::destroyed = 0;
  std::vector<reclaim::Retired> bundle;
  for (int i = 0; i < 10; ++i) {
    void* raw = pool.allocate(sizeof(RetireProbe), alignof(RetireProbe));
    bundle.push_back(reclaim::make_retired(new (raw) RetireProbe, &pool));
  }
  const auto locks_before = pool.lock_acquisitions();
  reclaim::free_all(bundle, nullptr);
  EXPECT_EQ(RetireProbe::destroyed, 10);
  // One size class -> exactly one push_batch trip for the whole bundle.
  EXPECT_EQ(pool.lock_acquisitions(), locks_before + 1);
  EXPECT_EQ(pool.stats().live_blocks(), 0u);
}

TEST(RetireSink, UnbatchedFallbackStillFreesPerNode) {
  alloc::PoolBackend pool;
  RetireProbe::destroyed = 0;
  std::vector<reclaim::Retired> bundle;
  for (int i = 0; i < 4; ++i) {
    void* raw = pool.allocate(sizeof(RetireProbe), alignof(RetireProbe));
    bundle.push_back(reclaim::make_retired(new (raw) RetireProbe, &pool));
  }
  reclaim::set_batched_free(false);  // the pre-batching A/B baseline
  const auto locks_before = pool.lock_acquisitions();
  reclaim::free_all(bundle, nullptr);
  reclaim::set_batched_free(true);
  EXPECT_EQ(RetireProbe::destroyed, 4);
  EXPECT_EQ(pool.lock_acquisitions(), locks_before + 4);  // per-node locks
  EXPECT_EQ(pool.stats().live_blocks(), 0u);
}

TEST(RetireSink, CrossThreadRetireThenAllocReuse) {
  // Thread A's nodes retire while thread B's cache is the sink (the
  // shard-executor shape: whoever's scan ripens the bundle absorbs it);
  // B's subsequent allocations reuse the bytes without backend trips.
  alloc::PoolBackend pool;
  std::vector<reclaim::Retired> bundle;
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      void* raw = pool.allocate(sizeof(RetireProbe), alignof(RetireProbe));
      bundle.push_back(reclaim::make_retired(new (raw) RetireProbe, &pool));
    }
  });
  producer.join();
  std::thread consumer([&] {
    alloc::ThreadCache cache(pool);
    const reclaim::RetireSink sink = cache.retire_sink();
    reclaim::free_all(bundle, &sink);
    EXPECT_EQ(cache.stats().recycled.load(), 6u);
    void* p = cache.allocate(sizeof(RetireProbe), alignof(RetireProbe));
    EXPECT_NE(p, nullptr);
    cache.deallocate(p, sizeof(RetireProbe), alignof(RetireProbe));
  });
  consumer.join();
}

}  // namespace
}  // namespace pathcopy
