#include <gtest/gtest.h>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/builder.hpp"
#include "core/node_base.hpp"
#include "reclaim/retired.hpp"

namespace pathcopy {
namespace {

struct TestNode : core::PNode {
  explicit TestNode(int v) : value(v) {}
  int value;
};

TEST(Builder, CreateMarksFresh) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* n = b.create<TestNode>(42);
  EXPECT_EQ(n->value, 42);
  EXPECT_EQ(n->pc_state_, core::NodeState::kFresh);
  EXPECT_EQ(b.fresh_count(), 1u);
}

TEST(Builder, SealPublishesSurvivors) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* n = b.create<TestNode>(1);
  b.seal();
  EXPECT_EQ(n->pc_state_, core::NodeState::kPublished);
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());
  // The node survives commit; free it manually.
  n->~TestNode();
  a.deallocate(const_cast<TestNode*>(n), sizeof(TestNode), alignof(TestNode));
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, SupersedeFreshMarksDeadAndCommitRecycles) {
  alloc::MallocAlloc a;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    const TestNode* n = b.create<TestNode>(1);
    b.supersede(n);
    EXPECT_EQ(n->pc_state_, core::NodeState::kFreshDead);
    b.seal();
    auto retired = b.commit();
    EXPECT_TRUE(retired.empty());  // fresh-dead nodes are not retired
    EXPECT_EQ(b.stats().recycled, 1u);
    EXPECT_EQ(b.bin_count(), 1u);  // parked for reuse, not freed
  }
  // The bin drains to the allocator when the builder dies.
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, SupersedePublishedGoesToRetireSet) {
  alloc::MallocAlloc a;
  const TestNode* old = nullptr;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    old = b.create<TestNode>(7);
    b.seal();
    auto r = b.commit();
    ASSERT_TRUE(r.empty());
  }
  core::Builder<alloc::MallocAlloc> b2(a);
  b2.supersede(old);
  b2.seal();
  auto retired = b2.commit();
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].p, const_cast<TestNode*>(old));
  reclaim::run_all(retired);  // destroys and frees through the backend
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, RollbackRecyclesEverything) {
  alloc::MallocAlloc a;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    b.create<TestNode>(1);
    b.create<TestNode>(2);
    const TestNode* dead = b.create<TestNode>(3);
    b.supersede(dead);
    b.rollback();
    EXPECT_EQ(b.stats().recycled, 3u);
    EXPECT_EQ(b.bin_count(), 3u);  // all three parked for the next attempt
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, FailedAttemptNodesAreReusedByTheRetry) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  // Attempt 1 loses its CAS: the path's nodes go to the bin.
  const TestNode* n1 = b.create<TestNode>(1);
  const TestNode* n2 = b.create<TestNode>(2);
  b.rollback();
  const std::uint64_t allocs_before =
      a.stats().allocs.load(std::memory_order_relaxed);
  // Attempt 2 (the retry): create() must serve both nodes from the bin —
  // same blocks, zero new allocations.
  b.reset();
  const TestNode* m1 = b.create<TestNode>(3);
  const TestNode* m2 = b.create<TestNode>(4);
  EXPECT_EQ(a.stats().allocs.load(std::memory_order_relaxed), allocs_before);
  EXPECT_EQ(b.stats().reused, 2u);
  // LIFO bin: last recycled block comes out first.
  EXPECT_EQ(static_cast<const void*>(m1), static_cast<const void*>(n2));
  EXPECT_EQ(static_cast<const void*>(m2), static_cast<const void*>(n1));
  b.rollback();
}

TEST(Builder, WonAttemptNodesAreNotRecycled) {
  alloc::MallocAlloc a;
  const TestNode* winner = nullptr;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    winner = b.create<TestNode>(9);
    b.seal();
    auto retired = b.commit();
    EXPECT_TRUE(retired.empty());
    EXPECT_EQ(b.stats().recycled, 0u);
    EXPECT_EQ(b.bin_count(), 0u);  // a published node never enters the bin
  }
  // The winner outlives the builder (it is published structure state).
  EXPECT_EQ(winner->pc_state_, core::NodeState::kPublished);
  EXPECT_EQ(a.stats().live_blocks(), 1u);
  winner->~TestNode();
  a.deallocate(const_cast<TestNode*>(winner), sizeof(TestNode),
               alignof(TestNode));
}

TEST(Builder, RecyclingOffRestoresImmediateDeallocate) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.set_recycling(false);
  b.create<TestNode>(1);
  b.rollback();
  EXPECT_EQ(a.stats().live_blocks(), 0u);  // freed immediately, no bin
  EXPECT_EQ(b.bin_count(), 0u);
  EXPECT_EQ(b.stats().recycled, 1u);
}

TEST(Builder, DestructorRollsBackUnresolvedAttempt) {
  alloc::MallocAlloc a;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    b.create<TestNode>(1);
    b.create<TestNode>(2);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, ResetReArmsForRetry) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* first = b.create<TestNode>(1);
  b.rollback();  // failed attempt
  b.reset();
  const TestNode* n = b.create<TestNode>(2);
  // The retry reuses the failed attempt's block.
  EXPECT_EQ(static_cast<const void*>(n), static_cast<const void*>(first));
  b.seal();
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());
  n->~TestNode();
  a.deallocate(const_cast<TestNode*>(n), sizeof(TestNode), alignof(TestNode));
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, ResetRollsBackImplicitly) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.create<TestNode>(1);
  b.reset();  // unresolved attempt gets rolled back by reset
  EXPECT_EQ(b.bin_count(), 1u);  // recycled into the bin, not leaked
  EXPECT_EQ(b.fresh_count(), 0u);
}

TEST(Builder, StatsTrackEachCategory) {
  alloc::MallocAlloc a;
  const TestNode* published = nullptr;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    published = b.create<TestNode>(0);
    b.seal();
    (void)b.commit();
  }
  const TestNode* live = nullptr;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    live = b.create<TestNode>(1);
    const TestNode* dead = b.create<TestNode>(2);
    b.supersede(dead);
    b.supersede(published);
    EXPECT_EQ(b.stats().created, 2u);
    EXPECT_EQ(b.stats().superseded_fresh, 1u);
    EXPECT_EQ(b.stats().superseded_published, 1u);
    b.seal();
    auto retired = b.commit();
    EXPECT_EQ(retired.size(), 1u);
    reclaim::run_all(retired);
    // The dead fresh node sits in b's bin until b dies here.
  }
  // One live node remains (value 1); clean it up.
  EXPECT_EQ(a.stats().live_blocks(), 1u);
  live->~TestNode();
  a.deallocate(const_cast<TestNode*>(live), sizeof(TestNode),
               alignof(TestNode));
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, WorksWithArena) {
  alloc::Arena arena;
  const TestNode* n = nullptr;
  {
    core::Builder<alloc::Arena> b(arena);
    n = b.create<TestNode>(5);
    b.supersede(n);
    b.rollback();
    // The block sits in b's bin until b dies, then drains to the arena's
    // free list.
  }
  core::Builder<alloc::Arena> b2(arena);
  const TestNode* m = b2.create<TestNode>(6);
  EXPECT_EQ(static_cast<const void*>(m), static_cast<const void*>(n));
  b2.rollback();
}

TEST(Builder, CommitWithoutCreations) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.seal();
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());
}

}  // namespace
}  // namespace pathcopy
