#include <gtest/gtest.h>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/builder.hpp"
#include "core/node_base.hpp"
#include "reclaim/retired.hpp"

namespace pathcopy {
namespace {

struct TestNode : core::PNode {
  explicit TestNode(int v) : value(v) {}
  int value;
};

TEST(Builder, CreateMarksFresh) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* n = b.create<TestNode>(42);
  EXPECT_EQ(n->value, 42);
  EXPECT_EQ(n->pc_state_, core::NodeState::kFresh);
  EXPECT_EQ(b.fresh_count(), 1u);
}

TEST(Builder, SealPublishesSurvivors) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* n = b.create<TestNode>(1);
  b.seal();
  EXPECT_EQ(n->pc_state_, core::NodeState::kPublished);
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());
  // The node survives commit; free it manually.
  n->~TestNode();
  a.deallocate(const_cast<TestNode*>(n), sizeof(TestNode), alignof(TestNode));
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, SupersedeFreshMarksDeadAndCommitRecycles) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* n = b.create<TestNode>(1);
  b.supersede(n);
  EXPECT_EQ(n->pc_state_, core::NodeState::kFreshDead);
  b.seal();
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());          // fresh-dead nodes are not retired
  EXPECT_EQ(a.stats().live_blocks(), 0u);  // they are recycled immediately
  EXPECT_EQ(b.stats().recycled, 1u);
}

TEST(Builder, SupersedePublishedGoesToRetireSet) {
  alloc::MallocAlloc a;
  const TestNode* old = nullptr;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    old = b.create<TestNode>(7);
    b.seal();
    auto r = b.commit();
    ASSERT_TRUE(r.empty());
  }
  core::Builder<alloc::MallocAlloc> b2(a);
  b2.supersede(old);
  b2.seal();
  auto retired = b2.commit();
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].p, const_cast<TestNode*>(old));
  reclaim::run_all(retired);  // destroys and frees through the backend
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, RollbackRecyclesEverything) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.create<TestNode>(1);
  b.create<TestNode>(2);
  const TestNode* dead = b.create<TestNode>(3);
  b.supersede(dead);
  b.rollback();
  EXPECT_EQ(a.stats().live_blocks(), 0u);
  EXPECT_EQ(b.stats().recycled, 3u);
}

TEST(Builder, DestructorRollsBackUnresolvedAttempt) {
  alloc::MallocAlloc a;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    b.create<TestNode>(1);
    b.create<TestNode>(2);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, ResetReArmsForRetry) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.create<TestNode>(1);
  b.rollback();  // failed attempt
  b.reset();
  const TestNode* n = b.create<TestNode>(2);
  b.seal();
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());
  n->~TestNode();
  a.deallocate(const_cast<TestNode*>(n), sizeof(TestNode), alignof(TestNode));
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, ResetRollsBackImplicitly) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.create<TestNode>(1);
  b.reset();  // unresolved attempt gets rolled back by reset
  EXPECT_EQ(a.stats().live_blocks(), 0u);
  EXPECT_EQ(b.fresh_count(), 0u);
}

TEST(Builder, StatsTrackEachCategory) {
  alloc::MallocAlloc a;
  const TestNode* published = nullptr;
  {
    core::Builder<alloc::MallocAlloc> b(a);
    published = b.create<TestNode>(0);
    b.seal();
    (void)b.commit();
  }
  core::Builder<alloc::MallocAlloc> b(a);
  const TestNode* live = b.create<TestNode>(1);
  const TestNode* dead = b.create<TestNode>(2);
  b.supersede(dead);
  b.supersede(published);
  EXPECT_EQ(b.stats().created, 2u);
  EXPECT_EQ(b.stats().superseded_fresh, 1u);
  EXPECT_EQ(b.stats().superseded_published, 1u);
  b.seal();
  auto retired = b.commit();
  EXPECT_EQ(retired.size(), 1u);
  reclaim::run_all(retired);
  // One live node remains (value 1); clean it up.
  EXPECT_EQ(a.stats().live_blocks(), 1u);
  live->~TestNode();
  a.deallocate(const_cast<TestNode*>(live), sizeof(TestNode),
               alignof(TestNode));
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Builder, WorksWithArena) {
  alloc::Arena arena;
  core::Builder<alloc::Arena> b(arena);
  const TestNode* n = b.create<TestNode>(5);
  b.supersede(n);
  b.rollback();
  // Rollback recycled into the arena's free list: next create reuses it.
  core::Builder<alloc::Arena> b2(arena);
  const TestNode* m = b2.create<TestNode>(6);
  EXPECT_EQ(static_cast<const void*>(m), static_cast<const void*>(n));
  b2.rollback();
}

TEST(Builder, CommitWithoutCreations) {
  alloc::MallocAlloc a;
  core::Builder<alloc::MallocAlloc> b(a);
  b.seal();
  auto retired = b.commit();
  EXPECT_TRUE(retired.empty());
}

}  // namespace
}  // namespace pathcopy
