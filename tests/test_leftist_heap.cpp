#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/leftist_heap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using H = persist::LeftistHeap<std::int64_t>;

template <class Alloc>
H push_all(Alloc& a, H h, const std::vector<std::int64_t>& values) {
  for (const auto v : values) {
    h = test::apply(a, [&](auto& b) { return h.push(b, v); });
  }
  return h;
}

TEST(LeftistHeap, EmptyBasics) {
  H h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_TRUE(h.check_invariants());
}

TEST(LeftistHeap, PushPopSingle) {
  alloc::Arena a;
  H h = push_all(a, H{}, {42});
  EXPECT_EQ(h.top(), 42);
  EXPECT_EQ(h.size(), 1u);
  h = test::apply(a, [&](auto& b) { return h.pop(b); });
  EXPECT_TRUE(h.empty());
}

TEST(LeftistHeap, PopOnEmptyIsNoOp) {
  alloc::Arena a;
  H h;
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(h.pop(b).root_ptr(), nullptr);
  b.rollback();
}

TEST(LeftistHeap, TopIsAlwaysMin) {
  alloc::Arena a;
  H h = push_all(a, H{}, {5, 3, 8, 1, 9, 2});
  EXPECT_EQ(h.top(), 1);
  EXPECT_TRUE(h.check_invariants());
}

TEST(LeftistHeap, DrainsSorted) {
  alloc::Arena a;
  util::Xoshiro256 rng(31);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.range(-1000, 1000));
  H h = push_all(a, H{}, values);
  core::Builder<alloc::Arena> b(a);
  const auto drained = h.drain_sorted(b);
  b.rollback();
  ASSERT_EQ(drained.size(), values.size());
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
  std::sort(values.begin(), values.end());
  EXPECT_EQ(drained, values);
}

TEST(LeftistHeap, DuplicateValuesSupported) {
  alloc::Arena a;
  H h = push_all(a, H{}, {3, 3, 3, 1, 1});
  EXPECT_EQ(h.size(), 5u);
  core::Builder<alloc::Arena> b(a);
  const auto drained = h.drain_sorted(b);
  b.rollback();
  EXPECT_EQ(drained, (std::vector<std::int64_t>{1, 1, 3, 3, 3}));
}

TEST(LeftistHeap, MeldCombines) {
  alloc::Arena a;
  H x = push_all(a, H{}, {1, 5, 9});
  H y = push_all(a, H{}, {2, 6, 10});
  H m = test::apply(a, [&](auto& b) { return H::meld(b, x, y); });
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.top(), 1);
  EXPECT_TRUE(m.check_invariants());
}

TEST(LeftistHeap, MeldWithEmpty) {
  alloc::Arena a;
  H x = push_all(a, H{}, {4, 2});
  core::Builder<alloc::Arena> b(a);
  H m1 = H::meld(b, x, H{});
  EXPECT_EQ(m1.root_ptr(), x.root_ptr());  // shares wholesale, no copy
  H m2 = H::meld(b, H{}, x);
  EXPECT_EQ(m2.root_ptr(), x.root_ptr());
  b.rollback();
}

TEST(LeftistHeap, RankInvariantUnderStress) {
  alloc::Arena a;
  util::Xoshiro256 rng(41);
  H h;
  std::priority_queue<std::int64_t, std::vector<std::int64_t>, std::greater<>> oracle;
  for (int i = 0; i < 2000; ++i) {
    if (oracle.empty() || rng.chance(3, 5)) {
      const auto v = rng.range(-500, 500);
      h = test::apply(a, [&](auto& b) { return h.push(b, v); });
      oracle.push(v);
    } else {
      ASSERT_EQ(h.top(), oracle.top());
      h = test::apply(a, [&](auto& b) { return h.pop(b); });
      oracle.pop();
    }
    ASSERT_EQ(h.size(), oracle.size());
    if (i % 200 == 0) ASSERT_TRUE(h.check_invariants());
  }
}

TEST(LeftistHeap, PersistencePopPreservesOldVersion) {
  alloc::Arena a;
  H v1 = push_all(a, H{}, {3, 1, 4, 1, 5});
  core::Builder<alloc::Arena> b(a);
  H v2 = v1.pop(b);
  b.seal();
  (void)b.commit();
  EXPECT_EQ(v1.size(), 5u);
  EXPECT_EQ(v1.top(), 1);
  EXPECT_EQ(v2.size(), 4u);
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(LeftistHeap, PushCopiesOnlyRightSpine) {
  alloc::Arena a;
  std::vector<std::int64_t> values;
  for (std::int64_t i = 0; i < 4096; ++i) values.push_back(i);
  H h = push_all(a, H{}, values);
  core::Builder<alloc::Arena> b(a);
  (void)h.push(b, 99999);
  // Right spine is at most log2(n+1) long; each meld step creates one node
  // (plus the new singleton).
  EXPECT_LE(b.stats().created, 16u);
  b.rollback();
}

TEST(LeftistHeap, SharingAfterPush) {
  alloc::Arena a;
  std::vector<std::int64_t> values;
  for (std::int64_t i = 0; i < 1000; ++i) values.push_back(i);
  H v1 = push_all(a, H{}, values);
  core::Builder<alloc::Arena> b(a);
  H v2 = v1.push(b, -1);
  b.seal();
  (void)b.commit();
  EXPECT_GE(H::shared_nodes(v1, v2), v1.size() - 15);
}

TEST(LeftistHeap, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  H h;
  for (std::int64_t i = 0; i < 100; ++i) {
    h = test::apply(a, [&](auto& b) { return h.push(b, i); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 100u);
  H::destroy(h.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
