// ShardExecutor: the store's async shard pipeline.
//
// What must hold:
//   * per-shard FIFO — tasks submitted to one shard apply in submission
//     order (the results of an alternating insert/erase chain on one key
//     betray any reorder);
//   * join-ticket completeness — join() returns only after every armed
//     sub-batch ran and scattered its results;
//   * shutdown drains — stop()/destruction executes everything already
//     submitted, completing its tickets, before the workers exit;
//   * the async Session path (executor attached) is observationally
//     identical to the synchronous splitter, including under concurrent
//     clients (the TSan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Epoch = reclaim::EpochReclaimer;
using MA = alloc::MallocAlloc;
using PlainUc = core::Atom<T, Epoch, MA>;
using CombUc = core::CombiningAtom<T, Epoch, MA>;
using RangeR = store::RangeRouter<std::int64_t>;

// MallocAlloc is thread-safe (operator new + atomic counters), so every
// worker can share the map's instance; sharing also keeps the leak check
// one-sided: all allocs and frees land on the same stats block.
template <class Uc>
auto shared_alloc_factory(MA& a) {
  return [&a]() -> MA& { return a; };
}

template <class Uc>
using Map = store::ShardedMap<Uc, RangeR>;

template <class Uc>
Map<Uc> make_map(std::size_t shards, MA& a) {
  return Map<Uc>(shards, a,
                 shards == 1 ? RangeR{} : RangeR::uniform(0, 1024, shards));
}

TEST(Executor, PerShardFifoOrderingOnOneKey) {
  MA a;
  {
    auto map = make_map<CombUc>(1, a);
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    // 2N single-op tasks alternating insert/erase of the same key. FIFO
    // execution makes every op land (insert on absent, erase on present):
    // all results true. Any reorder yields a false somewhere.
    constexpr int kPairs = 200;
    std::vector<Req> reqs;
    for (int i = 0; i < kPairs; ++i) {
      reqs.push_back(Req{K::kInsert, 7, 7});
      reqs.push_back(Req{K::kErase, 7, std::nullopt});
    }
    const auto results = std::make_unique<bool[]>(reqs.size());
    store::BatchTicket ticket;
    ticket.arm(static_cast<unsigned>(reqs.size()));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      typename store::ShardExecutor<CombUc>::Task task;
      task.reqs = std::span<const Req>(&reqs[i], 1);
      task.results = &results[i];
      task.ticket = &ticket;
      ASSERT_TRUE(exec.submit(0, task));
    }
    ticket.join();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(results[i]) << "op " << i << " saw a reordered state";
    }
    typename Map<CombUc>::Session session(map, a);
    EXPECT_EQ(session.size(), 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, JoinTicketCoversEveryShardsSubBatch) {
  MA a;
  {
    auto map = make_map<CombUc>(4, a);
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    typename Map<CombUc>::Session session(map, a);
    using Req = typename Map<CombUc>::BatchRequest;
    using K = typename Map<CombUc>::OpKind;
    // Fresh distinct keys spread over all shards: every result must come
    // back true, and only after join() may we rely on any of them.
    std::vector<Req> reqs;
    for (std::int64_t k = 0; k < 1024; k += 3) {
      reqs.push_back(Req{K::kInsert, k, k * 2});
    }
    const auto res = std::make_unique<bool[]>(reqs.size());
    session.execute_batch(reqs, std::span<bool>(res.get(), reqs.size()));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(res[i]) << "result " << i << " not scattered back";
    }
    ASSERT_EQ(session.size(), reqs.size());
    for (const Req& r : reqs) {
      ASSERT_EQ(session.find(r.key), std::optional<std::int64_t>(r.key * 2));
    }
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, StopDrainsQueuedTasksBeforeExit) {
  MA a;
  {
    auto map = make_map<CombUc>(2, a);
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    std::vector<std::vector<Req>> batches;
    for (std::int64_t b = 0; b < 64; ++b) {
      std::vector<Req> reqs;
      for (std::int64_t i = 0; i < 8; ++i) {
        const std::int64_t k = b * 8 + i;
        reqs.push_back(Req{K::kInsert, k, k});
      }
      batches.push_back(std::move(reqs));
    }
    const auto res = std::make_unique<bool[]>(64 * 8);
    store::BatchTicket ticket;
    {
      store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
      ticket.arm(64);
      for (std::size_t b = 0; b < batches.size(); ++b) {
        typename store::ShardExecutor<CombUc>::Task task;
        task.reqs = std::span<const Req>(batches[b]);
        task.results = &res[b * 8];
        task.ticket = &ticket;
        // Keys 0..511 with the range split at 512: everything routes to
        // shard 0; alternate lanes anyway to exercise both workers.
        ASSERT_TRUE(exec.submit(b % 2 == 0 ? 0 : 1, task));
      }
      // No join before stop: destruction must drain, not drop.
    }
    EXPECT_TRUE(ticket.done());
    typename Map<CombUc>::Session session(map, a);
    EXPECT_EQ(session.size(), 64u * 8u);
    for (std::size_t i = 0; i < 64u * 8u; ++i) {
      ASSERT_TRUE(res[i]) << "task for op " << i << " was dropped";
    }
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, WorkerStatsSurfaceWakesAndSampledLatency) {
  MA a;
  {
    auto map = make_map<CombUc>(2, a);
    store::ShardStatsBoard board(2);
    {
      store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
      typename Map<CombUc>::Session session(map, a);
      using Req = typename Map<CombUc>::BatchRequest;
      using K = typename Map<CombUc>::OpKind;
      std::vector<Req> reqs;
      for (std::int64_t k = 0; k < 1024; k += 2) {
        reqs.push_back(Req{K::kInsert, k, k});
      }
      const auto res = std::make_unique<bool[]>(reqs.size());
      session.execute_batch(reqs, std::span<bool>(res.get(), reqs.size()));
      exec.stop();
      exec.fold_into(board);
    }
    const core::OpStats total = board.total();
    // One client batch split over two shards: each worker ran one task,
    // on its own wakeup. Latency is SAMPLED (every Nth submit per lane),
    // but the first submit to a lane is always sample 0 — so both tasks
    // here carry a stamp and the sampled mean is honest, not zero.
    EXPECT_EQ(total.exec_tasks, 2u);
    EXPECT_GE(total.exec_wakes, 2u);
    EXPECT_EQ(total.exec_task_samples, 2u);
    EXPECT_GT(total.exec_task_ns, 0u);
    EXPECT_GT(total.mean_task_us(), 0.0);
    EXPECT_GT(total.updates, 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, RingWraparoundAndFullRingBackpressure) {
  MA a;
  // A 4-slot lane forces hundreds of wraparounds and constant full-ring
  // backpressure from three producers; nothing may be lost, reordered
  // per-producer, or run twice.
  constexpr int kProducers = 3;
  constexpr std::int64_t kPerProducer = 300;
  {
    auto map = make_map<CombUc>(1, a);
    typename store::ShardExecutor<CombUc>::Options opts;
    opts.lane_capacity = 4;
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a),
                                      opts);
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    std::vector<std::thread> producers;
    for (int w = 0; w < kProducers; ++w) {
      producers.emplace_back([&, w] {
        // Fresh disjoint keys per producer: every insert must return true.
        std::vector<Req> reqs;
        reqs.reserve(kPerProducer);
        for (std::int64_t i = 0; i < kPerProducer; ++i) {
          reqs.push_back(Req{K::kInsert, w * 100000 + i, i});
        }
        const auto res = std::make_unique<bool[]>(kPerProducer);
        store::BatchTicket ticket;
        ticket.arm(kPerProducer);
        for (std::int64_t i = 0; i < kPerProducer; ++i) {
          typename store::ShardExecutor<CombUc>::Task task;
          task.reqs = std::span<const Req>(&reqs[i], 1);
          task.results = &res[i];
          task.ticket = &ticket;
          ASSERT_TRUE(exec.submit(0, task));
        }
        ticket.join();
        for (std::int64_t i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(res[i]) << "producer " << w << " op " << i
                              << " lost or duplicated";
        }
      });
    }
    for (auto& p : producers) p.join();
    typename Map<CombUc>::Session session(map, a);
    EXPECT_EQ(session.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, StopRacingSubmittersDrainsEverythingAccepted) {
  MA a;
  // Clients keep batching fresh-key inserts while the main thread stops
  // the executor mid-stream. Accepted tasks must drain through the lane,
  // refused ones run synchronously inside Session — either way every op
  // lands exactly once and reports true.
  constexpr int kClients = 3;
  constexpr int kRounds = 60;
  constexpr int kBatch = 16;
  {
    auto map = make_map<CombUc>(2, a);
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    using Req = typename Map<CombUc>::BatchRequest;
    using K = typename Map<CombUc>::OpKind;
    std::vector<std::thread> clients;
    for (int w = 0; w < kClients; ++w) {
      clients.emplace_back([&, w] {
        typename Map<CombUc>::Session session(map, a);
        std::vector<Req> reqs;
        bool res[kBatch];
        for (int round = 0; round < kRounds; ++round) {
          reqs.clear();
          for (int i = 0; i < kBatch; ++i) {
            const std::int64_t k = w * 100000 + round * kBatch + i;
            reqs.push_back(Req{K::kInsert, k, k});
          }
          session.execute_batch(reqs, std::span<bool>(res, reqs.size()));
          for (int i = 0; i < kBatch; ++i) {
            ASSERT_TRUE(res[i]) << "client " << w << " round " << round;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    exec.stop();  // races the clients; they fall back to the sync path
    for (auto& c : clients) c.join();
    typename Map<CombUc>::Session session(map, a);
    EXPECT_EQ(session.size(),
              static_cast<std::size_t>(kClients * kRounds * kBatch));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, ForcedHotCoalescingMatchesSequentialOracleExactly) {
  MA a1, a2;
  // Coalescing forced hot: the worker starts parked while many small
  // tickets (heavy same-key traffic, so chains cross ticket boundaries)
  // pile into one lane; a single wakeup then drains and merges them all.
  // Exact per-op outcomes must equal replaying the tickets sequentially.
  constexpr int kTickets = 120;
  {
    auto map = make_map<CombUc>(1, a1);
    typename store::ShardExecutor<CombUc>::Options opts;
    opts.start_paused = true;
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a1),
                                      opts);
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    util::Xoshiro256 rng(41);
    std::vector<std::vector<Req>> tickets_reqs(kTickets);
    for (auto& reqs : tickets_reqs) {
      const int n = 1 + static_cast<int>(rng.range(0, 3));
      for (int i = 0; i < n; ++i) {
        const std::int64_t k = rng.range(0, 15);  // 16 keys: dense chains
        if (rng.chance(1, 2)) {
          reqs.push_back(Req{K::kInsert, k, k * 3 + n});
        } else {
          reqs.push_back(Req{K::kErase, k, std::nullopt});
        }
      }
      // The executor's merge contract: a coalescible task is key-sorted
      // with same-key ops in application order (what split_batch emits).
      std::stable_sort(reqs.begin(), reqs.end(),
                       [](const Req& x, const Req& y) { return x.key < y.key; });
    }
    std::vector<std::unique_ptr<bool[]>> results;
    std::deque<store::BatchTicket> tickets;
    for (int t = 0; t < kTickets; ++t) {
      results.push_back(std::make_unique<bool[]>(tickets_reqs[t].size()));
      store::BatchTicket& ticket = tickets.emplace_back();
      ticket.arm(1);
      typename store::ShardExecutor<CombUc>::Task task;
      task.reqs = std::span<const Req>(tickets_reqs[t]);
      task.results = results[t].get();
      task.ticket = &ticket;
      task.presorted = true;
      ASSERT_TRUE(exec.submit(0, task));
    }
    exec.resume();
    for (auto& t : tickets) t.join();

    // Sequential oracle: the lane is FIFO, so outcomes must equal
    // applying the tickets one at a time in submission order.
    auto oracle_map = make_map<CombUc>(1, a2);
    typename Map<CombUc>::Session oracle(oracle_map, a2);
    for (int t = 0; t < kTickets; ++t) {
      const auto& reqs = tickets_reqs[t];
      bool buf[8];
      oracle.execute_batch(reqs, std::span<bool>(buf, reqs.size()));
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        ASSERT_EQ(results[t][i], buf[i])
            << "ticket " << t << " op " << i
            << " diverged across a coalesced install";
      }
    }
    typename Map<CombUc>::Session session(map, a1);
    ASSERT_EQ(session.items(), oracle.items());

    store::ShardStatsBoard board(1);
    exec.stop();
    exec.fold_into(board);
    const core::OpStats total = board.total();
    // The parked backlog must have coalesced: far fewer wakes than
    // tickets, and merged installs absorbing multiple tickets each.
    EXPECT_EQ(total.exec_tasks, static_cast<std::uint64_t>(kTickets));
    EXPECT_GT(total.tickets_per_wake(), 1.0);
    EXPECT_GE(total.exec_coalesced_installs, 1u);
    EXPECT_GE(total.exec_coalesced_tasks, 2u);
  }
  EXPECT_EQ(a1.stats().live_blocks(), 0u);
  EXPECT_EQ(a2.stats().live_blocks(), 0u);
}

TEST(Executor, SubmitAfterStopIsRefusedNotFatal) {
  MA a;
  {
    auto map = make_map<CombUc>(1, a);
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    exec.stop();
    // A submit that lost the race against stop() is refused, not fatal;
    // the caller settles the ticket slot and runs the work itself, which
    // is exactly what Session does.
    const Req req{K::kInsert, 3, 3};
    bool res = false;
    store::BatchTicket ticket;
    ticket.arm(1);
    typename store::ShardExecutor<CombUc>::Task task;
    task.reqs = std::span<const Req>(&req, 1);
    task.results = &res;
    task.ticket = &ticket;
    EXPECT_FALSE(exec.submit(0, task));
    ticket.complete_one();
    ticket.join();
    EXPECT_TRUE(ticket.done());
    // stop() detached from the map, so session batches take the
    // synchronous path transparently.
    typename Map<CombUc>::Session session(map, a);
    bool out[1];
    session.execute_batch(std::span<const Req>(&req, 1),
                          std::span<bool>(out, 1));
    EXPECT_TRUE(out[0]);
    EXPECT_TRUE(session.contains(3));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

template <class UcT>
struct ExecCase {
  using Uc = UcT;
};

template <class C>
class ExecutorTyped : public ::testing::Test {};

using ExecBackends =
    ::testing::Types<ExecCase<PlainUc>, ExecCase<CombUc>>;
TYPED_TEST_SUITE(ExecutorTyped, ExecBackends);

TYPED_TEST(ExecutorTyped, AsyncSessionMatchesSyncOracle) {
  using Uc = typename TypeParam::Uc;
  using Req = typename Uc::BatchRequest;
  using K = typename Uc::OpKind;
  MA a1, a2;
  {
    auto async_map = make_map<Uc>(4, a1);
    store::ShardExecutor<Uc> exec(async_map, shared_alloc_factory<Uc>(a1));
    typename Map<Uc>::Session async_sess(async_map, a1);
    auto sync_map = make_map<Uc>(4, a2);
    typename Map<Uc>::Session sync_sess(sync_map, a2);

    util::Xoshiro256 rng(19);
    for (int iter = 0; iter < 30; ++iter) {
      const int n = 1 + static_cast<int>(rng.range(0, 49));
      std::vector<Req> reqs;
      for (int i = 0; i < n; ++i) {
        const std::int64_t k = rng.range(0, 96);  // dense: same-key chains
        if (rng.chance(1, 2)) {
          reqs.push_back(Req{K::kInsert, k, k + 7 * iter});
        } else {
          reqs.push_back(Req{K::kErase, k, std::nullopt});
        }
      }
      bool got[56], want[56];
      async_sess.execute_batch(reqs, std::span<bool>(got, reqs.size()));
      sync_sess.execute_batch(reqs, std::span<bool>(want, reqs.size()));
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "iter " << iter << " op " << i;
      }
    }
    ASSERT_EQ(async_sess.items(), sync_sess.items());
  }
  EXPECT_EQ(a1.stats().live_blocks(), 0u);
  EXPECT_EQ(a2.stats().live_blocks(), 0u);
}

TYPED_TEST(ExecutorTyped, ConcurrentClientsThroughOnePipeline) {
  using Uc = typename TypeParam::Uc;
  using Req = typename Uc::BatchRequest;
  using K = typename Uc::OpKind;
  MA a;
  constexpr int kClients = 4;
  constexpr int kKeys = 96;
  {
    auto map = make_map<Uc>(4, a);
    store::ShardExecutor<Uc> exec(map, shared_alloc_factory<Uc>(a));
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    std::vector<std::thread> clients;
    for (int w = 0; w < kClients; ++w) {
      clients.emplace_back([&, w] {
        typename Map<Uc>::Session session(map, a);
        util::Xoshiro256 rng(w * 31 + 5);
        std::vector<Req> reqs;
        bool res[16];
        for (int round = 0; round < 150; ++round) {
          reqs.clear();
          for (int i = 0; i < 16; ++i) {
            const std::int64_t k = rng.range(0, kKeys - 1);
            if (rng.chance(1, 2)) {
              reqs.push_back(Req{K::kInsert, k, k});
            } else {
              reqs.push_back(Req{K::kErase, k, std::nullopt});
            }
          }
          session.execute_batch(reqs, std::span<bool>(res, reqs.size()));
          for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (!res[i]) continue;
            net[reqs[i].key].fetch_add(
                reqs[i].kind == K::kInsert ? 1 : -1);
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    typename Map<Uc>::Session session(map, a);
    std::size_t present = 0;
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      ASSERT_EQ(session.contains(k), n == 1) << "key " << k;
      present += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(session.size(), present);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
