// ShardExecutor: the store's async shard pipeline.
//
// What must hold:
//   * per-shard FIFO — tasks submitted to one shard apply in submission
//     order (the results of an alternating insert/erase chain on one key
//     betray any reorder);
//   * join-ticket completeness — join() returns only after every armed
//     sub-batch ran and scattered its results;
//   * shutdown drains — stop()/destruction executes everything already
//     submitted, completing its tickets, before the workers exit;
//   * the async Session path (executor attached) is observationally
//     identical to the synchronous splitter, including under concurrent
//     clients (the TSan target).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Epoch = reclaim::EpochReclaimer;
using MA = alloc::MallocAlloc;
using PlainUc = core::Atom<T, Epoch, MA>;
using CombUc = core::CombiningAtom<T, Epoch, MA>;
using RangeR = store::RangeRouter<std::int64_t>;

// MallocAlloc is thread-safe (operator new + atomic counters), so every
// worker can share the map's instance; sharing also keeps the leak check
// one-sided: all allocs and frees land on the same stats block.
template <class Uc>
auto shared_alloc_factory(MA& a) {
  return [&a]() -> MA& { return a; };
}

template <class Uc>
using Map = store::ShardedMap<Uc, RangeR>;

template <class Uc>
Map<Uc> make_map(std::size_t shards, MA& a) {
  return Map<Uc>(shards, a,
                 shards == 1 ? RangeR{} : RangeR::uniform(0, 1024, shards));
}

TEST(Executor, PerShardFifoOrderingOnOneKey) {
  MA a;
  {
    auto map = make_map<CombUc>(1, a);
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    // 2N single-op tasks alternating insert/erase of the same key. FIFO
    // execution makes every op land (insert on absent, erase on present):
    // all results true. Any reorder yields a false somewhere.
    constexpr int kPairs = 200;
    std::vector<Req> reqs;
    for (int i = 0; i < kPairs; ++i) {
      reqs.push_back(Req{K::kInsert, 7, 7});
      reqs.push_back(Req{K::kErase, 7, std::nullopt});
    }
    const auto results = std::make_unique<bool[]>(reqs.size());
    store::BatchTicket ticket;
    ticket.arm(static_cast<unsigned>(reqs.size()));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      typename store::ShardExecutor<CombUc>::Task task;
      task.reqs = std::span<const Req>(&reqs[i], 1);
      task.results = &results[i];
      task.ticket = &ticket;
      ASSERT_TRUE(exec.submit(0, task));
    }
    ticket.join();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(results[i]) << "op " << i << " saw a reordered state";
    }
    typename Map<CombUc>::Session session(map, a);
    EXPECT_EQ(session.size(), 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, JoinTicketCoversEveryShardsSubBatch) {
  MA a;
  {
    auto map = make_map<CombUc>(4, a);
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    typename Map<CombUc>::Session session(map, a);
    using Req = typename Map<CombUc>::BatchRequest;
    using K = typename Map<CombUc>::OpKind;
    // Fresh distinct keys spread over all shards: every result must come
    // back true, and only after join() may we rely on any of them.
    std::vector<Req> reqs;
    for (std::int64_t k = 0; k < 1024; k += 3) {
      reqs.push_back(Req{K::kInsert, k, k * 2});
    }
    const auto res = std::make_unique<bool[]>(reqs.size());
    session.execute_batch(reqs, std::span<bool>(res.get(), reqs.size()));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_TRUE(res[i]) << "result " << i << " not scattered back";
    }
    ASSERT_EQ(session.size(), reqs.size());
    for (const Req& r : reqs) {
      ASSERT_EQ(session.find(r.key), std::optional<std::int64_t>(r.key * 2));
    }
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, StopDrainsQueuedTasksBeforeExit) {
  MA a;
  {
    auto map = make_map<CombUc>(2, a);
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    std::vector<std::vector<Req>> batches;
    for (std::int64_t b = 0; b < 64; ++b) {
      std::vector<Req> reqs;
      for (std::int64_t i = 0; i < 8; ++i) {
        const std::int64_t k = b * 8 + i;
        reqs.push_back(Req{K::kInsert, k, k});
      }
      batches.push_back(std::move(reqs));
    }
    const auto res = std::make_unique<bool[]>(64 * 8);
    store::BatchTicket ticket;
    {
      store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
      ticket.arm(64);
      for (std::size_t b = 0; b < batches.size(); ++b) {
        typename store::ShardExecutor<CombUc>::Task task;
        task.reqs = std::span<const Req>(batches[b]);
        task.results = &res[b * 8];
        task.ticket = &ticket;
        // Keys 0..511 with the range split at 512: everything routes to
        // shard 0; alternate lanes anyway to exercise both workers.
        ASSERT_TRUE(exec.submit(b % 2 == 0 ? 0 : 1, task));
      }
      // No join before stop: destruction must drain, not drop.
    }
    EXPECT_TRUE(ticket.done());
    typename Map<CombUc>::Session session(map, a);
    EXPECT_EQ(session.size(), 64u * 8u);
    for (std::size_t i = 0; i < 64u * 8u; ++i) {
      ASSERT_TRUE(res[i]) << "task for op " << i << " was dropped";
    }
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, WorkerStatsSurfaceQueueDepthAndLatency) {
  MA a;
  {
    auto map = make_map<CombUc>(2, a);
    store::ShardStatsBoard board(2);
    {
      store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
      typename Map<CombUc>::Session session(map, a);
      using Req = typename Map<CombUc>::BatchRequest;
      using K = typename Map<CombUc>::OpKind;
      std::vector<Req> reqs;
      for (std::int64_t k = 0; k < 1024; k += 2) {
        reqs.push_back(Req{K::kInsert, k, k});
      }
      const auto res = std::make_unique<bool[]>(reqs.size());
      session.execute_batch(reqs, std::span<bool>(res.get(), reqs.size()));
      exec.stop();
      exec.fold_into(board);
    }
    const core::OpStats total = board.total();
    // One client batch split over two shards: each worker ran one task.
    EXPECT_EQ(total.exec_tasks, 2u);
    EXPECT_GT(total.exec_task_ns, 0u);
    EXPECT_GT(total.updates, 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Executor, SubmitAfterStopIsRefusedNotFatal) {
  MA a;
  {
    auto map = make_map<CombUc>(1, a);
    using Req = typename CombUc::BatchRequest;
    using K = typename CombUc::OpKind;
    store::ShardExecutor<CombUc> exec(map, shared_alloc_factory<CombUc>(a));
    exec.stop();
    // A submit that lost the race against stop() is refused, not fatal;
    // the caller settles the ticket slot and runs the work itself, which
    // is exactly what Session does.
    const Req req{K::kInsert, 3, 3};
    bool res = false;
    store::BatchTicket ticket;
    ticket.arm(1);
    typename store::ShardExecutor<CombUc>::Task task;
    task.reqs = std::span<const Req>(&req, 1);
    task.results = &res;
    task.ticket = &ticket;
    EXPECT_FALSE(exec.submit(0, task));
    ticket.complete_one();
    ticket.join();
    EXPECT_TRUE(ticket.done());
    // stop() detached from the map, so session batches take the
    // synchronous path transparently.
    typename Map<CombUc>::Session session(map, a);
    bool out[1];
    session.execute_batch(std::span<const Req>(&req, 1),
                          std::span<bool>(out, 1));
    EXPECT_TRUE(out[0]);
    EXPECT_TRUE(session.contains(3));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

template <class UcT>
struct ExecCase {
  using Uc = UcT;
};

template <class C>
class ExecutorTyped : public ::testing::Test {};

using ExecBackends =
    ::testing::Types<ExecCase<PlainUc>, ExecCase<CombUc>>;
TYPED_TEST_SUITE(ExecutorTyped, ExecBackends);

TYPED_TEST(ExecutorTyped, AsyncSessionMatchesSyncOracle) {
  using Uc = typename TypeParam::Uc;
  using Req = typename Uc::BatchRequest;
  using K = typename Uc::OpKind;
  MA a1, a2;
  {
    auto async_map = make_map<Uc>(4, a1);
    store::ShardExecutor<Uc> exec(async_map, shared_alloc_factory<Uc>(a1));
    typename Map<Uc>::Session async_sess(async_map, a1);
    auto sync_map = make_map<Uc>(4, a2);
    typename Map<Uc>::Session sync_sess(sync_map, a2);

    util::Xoshiro256 rng(19);
    for (int iter = 0; iter < 30; ++iter) {
      const int n = 1 + static_cast<int>(rng.range(0, 49));
      std::vector<Req> reqs;
      for (int i = 0; i < n; ++i) {
        const std::int64_t k = rng.range(0, 96);  // dense: same-key chains
        if (rng.chance(1, 2)) {
          reqs.push_back(Req{K::kInsert, k, k + 7 * iter});
        } else {
          reqs.push_back(Req{K::kErase, k, std::nullopt});
        }
      }
      bool got[56], want[56];
      async_sess.execute_batch(reqs, std::span<bool>(got, reqs.size()));
      sync_sess.execute_batch(reqs, std::span<bool>(want, reqs.size()));
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "iter " << iter << " op " << i;
      }
    }
    ASSERT_EQ(async_sess.items(), sync_sess.items());
  }
  EXPECT_EQ(a1.stats().live_blocks(), 0u);
  EXPECT_EQ(a2.stats().live_blocks(), 0u);
}

TYPED_TEST(ExecutorTyped, ConcurrentClientsThroughOnePipeline) {
  using Uc = typename TypeParam::Uc;
  using Req = typename Uc::BatchRequest;
  using K = typename Uc::OpKind;
  MA a;
  constexpr int kClients = 4;
  constexpr int kKeys = 96;
  {
    auto map = make_map<Uc>(4, a);
    store::ShardExecutor<Uc> exec(map, shared_alloc_factory<Uc>(a));
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    std::vector<std::thread> clients;
    for (int w = 0; w < kClients; ++w) {
      clients.emplace_back([&, w] {
        typename Map<Uc>::Session session(map, a);
        util::Xoshiro256 rng(w * 31 + 5);
        std::vector<Req> reqs;
        bool res[16];
        for (int round = 0; round < 150; ++round) {
          reqs.clear();
          for (int i = 0; i < 16; ++i) {
            const std::int64_t k = rng.range(0, kKeys - 1);
            if (rng.chance(1, 2)) {
              reqs.push_back(Req{K::kInsert, k, k});
            } else {
              reqs.push_back(Req{K::kErase, k, std::nullopt});
            }
          }
          session.execute_batch(reqs, std::span<bool>(res, reqs.size()));
          for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (!res[i]) continue;
            net[reqs[i].key].fetch_add(
                reqs[i].kind == K::kInsert ? 1 : -1);
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    typename Map<Uc>::Session session(map, a);
    std::size_t present = 0;
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      ASSERT_EQ(session.contains(k), n == 1) << "key " << k;
      present += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(session.size(), present);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
