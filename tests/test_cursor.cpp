// Snapshot cursors: ordered traversal, lower-bound seeks, bidirectional
// stepping, and stability over superseded versions — typed across every
// binary-node structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/cursor.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

template <class DS>
class CursorTyped : public ::testing::Test {};

using BinaryStructures =
    ::testing::Types<persist::Treap<std::int64_t, std::int64_t>,
                     persist::AvlTree<std::int64_t, std::int64_t>,
                     persist::WbTree<std::int64_t, std::int64_t>,
                     persist::RbTree<std::int64_t, std::int64_t>>;
TYPED_TEST_SUITE(CursorTyped, BinaryStructures);

template <class DS, class Alloc>
DS insert_all(Alloc& al, DS t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(al, [&](auto& b) { return t.insert(b, k, k * 2); });
  }
  return t;
}

TYPED_TEST(CursorTyped, EmptySnapshotIsAlwaysInvalid) {
  TypeParam t;
  persist::Cursor<TypeParam> c(t);
  EXPECT_FALSE(c.valid());
  c.seek_first();
  EXPECT_FALSE(c.valid());
  c.seek_last();
  EXPECT_FALSE(c.valid());
  c.seek(0);
  EXPECT_FALSE(c.valid());
}

TYPED_TEST(CursorTyped, ForwardScanMatchesItems) {
  alloc::Arena a;
  util::Xoshiro256 rng(5);
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.range(-1000, 1000));
  TypeParam t = insert_all(a, TypeParam{}, keys);
  const auto items = t.items();
  persist::Cursor<TypeParam> c(t);
  std::size_t i = 0;
  for (c.seek_first(); c.valid(); c.next(), ++i) {
    ASSERT_LT(i, items.size());
    ASSERT_EQ(c.key(), items[i].first);
    ASSERT_EQ(c.value(), items[i].second);
  }
  EXPECT_EQ(i, items.size());
}

TYPED_TEST(CursorTyped, BackwardScanIsReverseOrder) {
  alloc::Arena a;
  TypeParam t = insert_all(a, TypeParam{}, {5, 1, 9, 3, 7, 2, 8});
  const auto items = t.items();
  persist::Cursor<TypeParam> c(t);
  std::size_t i = items.size();
  for (c.seek_last(); c.valid(); c.prev()) {
    ASSERT_GT(i, 0u);
    --i;
    ASSERT_EQ(c.key(), items[i].first);
  }
  EXPECT_EQ(i, 0u);
}

TYPED_TEST(CursorTyped, SeekIsLowerBound) {
  alloc::Arena a;
  TypeParam t = insert_all(a, TypeParam{}, {10, 20, 30, 40});
  persist::Cursor<TypeParam> c(t);
  c.seek(5);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 10);
  c.seek(20);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 20);
  c.seek(21);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 30);
  c.seek(40);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 40);
  c.seek(41);
  EXPECT_FALSE(c.valid());
}

TYPED_TEST(CursorTyped, SeekThenStepBothWays) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i * 10);
  TypeParam t = insert_all(a, TypeParam{}, keys);
  persist::Cursor<TypeParam> c(t);
  c.seek(505);  // between 500 and 510
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 510);
  c.prev();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 500);
  c.next();
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.key(), 510);
  // Walk off the front.
  c.seek_first();
  c.prev();
  EXPECT_FALSE(c.valid());
  // Walk off the back.
  c.seek_last();
  c.next();
  EXPECT_FALSE(c.valid());
}

TYPED_TEST(CursorTyped, FuzzWalkMatchesMapIterator) {
  alloc::Arena a;
  util::Xoshiro256 rng(23);
  std::map<std::int64_t, std::int64_t> oracle;
  TypeParam t;
  for (int i = 0; i < 400; ++i) {
    const std::int64_t k = rng.range(-500, 500);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 2); });
    oracle.emplace(k, k * 2);
  }
  persist::Cursor<TypeParam> c(t);
  auto it = oracle.begin();
  c.seek_first();
  for (int step = 0; step < 3000; ++step) {
    ASSERT_EQ(c.valid(), it != oracle.end());
    if (c.valid()) {
      ASSERT_EQ(c.key(), it->first);
      ASSERT_EQ(c.value(), it->second);
    }
    const auto choice = rng.below(3);
    if (choice == 0 && it != oracle.end()) {
      c.next();
      ++it;
    } else if (choice == 1 && it != oracle.begin() &&
               (it == oracle.end() || c.valid())) {
      // prev() from an invalid (past-end) cursor is not defined; emulate
      // the oracle's --end() with seek_last instead.
      if (it == oracle.end()) {
        c.seek_last();
      } else {
        c.prev();
      }
      --it;
    } else {
      const std::int64_t q = rng.range(-520, 520);
      c.seek(q);
      it = oracle.lower_bound(q);
    }
  }
}

TYPED_TEST(CursorTyped, ScanRangeMatchesOracle) {
  alloc::Arena a;
  util::Xoshiro256 rng(31);
  std::map<std::int64_t, std::int64_t> oracle;
  TypeParam t;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t k = rng.range(-300, 300);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, -k); });
    oracle.emplace(k, -k);
  }
  for (int probe = 0; probe < 40; ++probe) {
    std::int64_t lo = rng.range(-320, 320);
    std::int64_t hi = rng.range(-320, 320);
    if (lo > hi) std::swap(lo, hi);
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    persist::scan_range(t, lo, hi, [&](const std::int64_t& k,
                                       const std::int64_t& v) {
      got.emplace_back(k, v);
    });
    std::vector<std::pair<std::int64_t, std::int64_t>> expect(
        oracle.lower_bound(lo), oracle.lower_bound(hi));
    ASSERT_EQ(got, expect) << "[" << lo << ", " << hi << ")";
  }
}

TYPED_TEST(CursorTyped, CursorOverOldVersionSurvivesChurn) {
  alloc::Arena a;
  TypeParam old_version = insert_all(a, TypeParam{}, {1, 2, 3, 4, 5});
  persist::Cursor<TypeParam> c(old_version);
  c.seek_first();
  // Churn the structure: new versions share and supersede nodes, but the
  // arena keeps everything alive, so the old snapshot must scan intact.
  TypeParam head = old_version;
  for (std::int64_t k = 6; k < 200; ++k) {
    head = test::apply(a, [&](auto& b) { return head.insert(b, k, k); });
  }
  for (std::int64_t k = 1; k <= 5; ++k) {
    head = test::apply(a, [&](auto& b) { return head.erase(b, k); });
  }
  std::vector<std::int64_t> seen;
  for (; c.valid(); c.next()) seen.push_back(c.key());
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

// ----- the same battery against the B+tree's LeafCursor -----

template <unsigned F>
void run_btree_cursor_battery() {
  using BT = persist::BTree<std::int64_t, std::int64_t, F>;
  alloc::Arena a;
  util::Xoshiro256 rng(41 + F);
  std::map<std::int64_t, std::int64_t> oracle;
  BT t;
  for (int i = 0; i < 600; ++i) {
    const std::int64_t k = rng.range(-700, 700);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 3); });
    oracle.emplace(k, k * 3);
  }
  // Full forward scan.
  {
    persist::LeafCursor<BT> c(t);
    auto it = oracle.begin();
    for (c.seek_first(); c.valid(); c.next(), ++it) {
      ASSERT_NE(it, oracle.end());
      ASSERT_EQ(c.key(), it->first);
      ASSERT_EQ(c.value(), it->second);
    }
    ASSERT_EQ(it, oracle.end());
  }
  // Full backward scan.
  {
    persist::LeafCursor<BT> c(t);
    auto it = oracle.rbegin();
    for (c.seek_last(); c.valid(); c.prev(), ++it) {
      ASSERT_NE(it, oracle.rend());
      ASSERT_EQ(c.key(), it->first);
    }
    ASSERT_EQ(it, oracle.rend());
  }
  // Lower-bound seeks and mixed stepping.
  {
    persist::LeafCursor<BT> c(t);
    for (int probe = 0; probe < 200; ++probe) {
      const std::int64_t q = rng.range(-720, 720);
      c.seek(q);
      const auto it = oracle.lower_bound(q);
      ASSERT_EQ(c.valid(), it != oracle.end()) << "seek " << q;
      if (c.valid()) {
        ASSERT_EQ(c.key(), it->first);
        // One step each way where defined.
        auto fwd = std::next(it);
        c.next();
        ASSERT_EQ(c.valid(), fwd != oracle.end());
        if (c.valid()) { ASSERT_EQ(c.key(), fwd->first); }
        if (c.valid()) c.prev();  // back to it
        if (it != oracle.begin() && c.valid()) {
          c.prev();
          ASSERT_EQ(c.key(), std::prev(it)->first);
        }
      }
    }
  }
  // scan_range picks the LeafCursor via make_cursor.
  for (int probe = 0; probe < 30; ++probe) {
    std::int64_t lo = rng.range(-720, 720);
    std::int64_t hi = rng.range(-720, 720);
    if (lo > hi) std::swap(lo, hi);
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    persist::scan_range(
        t, lo, hi,
        [&](const std::int64_t& k, const std::int64_t& v) {
          got.emplace_back(k, v);
        });
    std::vector<std::pair<std::int64_t, std::int64_t>> expect(
        oracle.lower_bound(lo), oracle.lower_bound(hi));
    ASSERT_EQ(got, expect) << "[" << lo << ", " << hi << ")";
  }
}

TEST(BtreeCursor, Fanout3) { run_btree_cursor_battery<3>(); }
TEST(BtreeCursor, Fanout8) { run_btree_cursor_battery<8>(); }
TEST(BtreeCursor, Fanout64) { run_btree_cursor_battery<64>(); }

TEST(BtreeCursor, EmptyAndSingle) {
  using BT = persist::BTree<std::int64_t, std::int64_t, 8>;
  BT empty;
  persist::LeafCursor<BT> c(empty);
  c.seek_first();
  EXPECT_FALSE(c.valid());
  c.seek_last();
  EXPECT_FALSE(c.valid());
  c.seek(5);
  EXPECT_FALSE(c.valid());

  alloc::Arena a;
  BT one = test::apply(a, [&](auto& b) { return BT{}.insert(b, 9, 90); });
  persist::LeafCursor<BT> c1(one);
  c1.seek_first();
  ASSERT_TRUE(c1.valid());
  EXPECT_EQ(c1.key(), 9);
  c1.next();
  EXPECT_FALSE(c1.valid());
  c1.seek(9);
  ASSERT_TRUE(c1.valid());
  c1.prev();
  EXPECT_FALSE(c1.valid());
  c1.seek(10);
  EXPECT_FALSE(c1.valid());
}

}  // namespace
}  // namespace pathcopy
