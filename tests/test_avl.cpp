#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/avl.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using A = persist::AvlTree<std::int64_t, std::int64_t>;

template <class Alloc>
A insert_all(Alloc& al, A t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(al, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

TEST(Avl, EmptyBasics) {
  A t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Avl, AscendingInsertStaysBalanced) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 1024; ++i) keys.push_back(i);
  A t = insert_all(a, A{}, keys);
  EXPECT_EQ(t.size(), 1024u);
  EXPECT_TRUE(t.check_invariants());
  // AVL height bound: <= 1.44 log2(n+2) ≈ 14.5 for n=1024.
  EXPECT_LE(t.height(), 15u);
}

TEST(Avl, DescendingInsertStaysBalanced) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 1024; i > 0; --i) keys.push_back(i);
  A t = insert_all(a, A{}, keys);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_LE(t.height(), 15u);
}

TEST(Avl, ZigZagInsertTriggersDoubleRotations) {
  alloc::Arena a;
  // 2, 1, 3 ... patterns that force LR and RL rotations.
  A t = insert_all(a, A{}, {10, 4, 15, 2, 6, 12, 20, 5});
  EXPECT_TRUE(t.check_invariants());
  t = insert_all(a, t, {7});  // LR case under 6
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 9u);
}

TEST(Avl, DuplicateInsertReturnsSameRoot) {
  alloc::Arena a;
  A t = insert_all(a, A{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.insert(b, 2, 0).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(Avl, EraseAbsentReturnsSameRoot) {
  alloc::Arena a;
  A t = insert_all(a, A{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.erase(b, 9).root_ptr(), t.root_ptr());
  b.rollback();
}

TEST(Avl, EraseLeafInternalAndRoot) {
  alloc::Arena a;
  A t = insert_all(a, A{}, {8, 4, 12, 2, 6, 10, 14, 1, 3});
  // Leaf erase.
  t = test::apply(a, [&](auto& b) { return t.erase(b, 3); });
  EXPECT_FALSE(t.contains(3));
  EXPECT_TRUE(t.check_invariants());
  // One-child node erase.
  t = test::apply(a, [&](auto& b) { return t.erase(b, 2); });
  EXPECT_FALSE(t.contains(2));
  EXPECT_TRUE(t.check_invariants());
  // Two-children erase (pulls successor).
  t = test::apply(a, [&](auto& b) { return t.erase(b, 4); });
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.check_invariants());
  // Root erase.
  t = test::apply(a, [&](auto& b) { return t.erase(b, 8); });
  EXPECT_FALSE(t.contains(8));
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 5u);
}

TEST(Avl, EraseEverything) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 256; ++i) keys.push_back(i);
  A t = insert_all(a, A{}, keys);
  util::Xoshiro256 rng(5);
  std::vector<std::int64_t> order = keys;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (const auto k : order) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_TRUE(t.empty());
}

TEST(Avl, RankAndKth) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i * 5);
  A t = insert_all(a, A{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(t.kth(i), nullptr);
    EXPECT_EQ(t.kth(i)->key, keys[i]);
    EXPECT_EQ(t.rank(keys[i]), i);
  }
}

TEST(Avl, ForEachRangeMatchesFilteredScanAndCountRange) {
  alloc::Arena a;
  util::Xoshiro256 rng(7);
  std::set<std::int64_t> oracle;
  A t;
  for (int i = 0; i < 600; ++i) {
    const std::int64_t k = rng.range(-500, 500);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
    oracle.insert(k);
  }
  // Random [lo, hi) windows, including empty and inverted ones, against
  // the oracle's own half-open slice. In-order visitation is part of the
  // contract (migration slices must arrive sorted).
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t lo = rng.range(-600, 600);
    const std::int64_t hi = rng.range(-600, 600);
    std::vector<std::int64_t> got;
    t.for_each_range(lo, hi, [&](const std::int64_t& k, const std::int64_t& v) {
      EXPECT_EQ(v, k * 10);
      got.push_back(k);
    });
    std::vector<std::int64_t> want;
    for (auto it = oracle.lower_bound(lo); it != oracle.end() && *it < hi;
         ++it) {
      want.push_back(*it);
    }
    ASSERT_EQ(got, want) << "[" << lo << ", " << hi << ")";
    EXPECT_EQ(t.count_range(lo, hi), want.size());
  }
  // Boundary semantics: lo inclusive, hi exclusive.
  const std::int64_t present = *oracle.begin();
  std::size_t hits = 0;
  t.for_each_range(present, present, [&](auto&, auto&) { ++hits; });
  EXPECT_EQ(hits, 0u);
  t.for_each_range(present, present + 1, [&](auto&, auto&) { ++hits; });
  EXPECT_EQ(hits, 1u);
}

TEST(Avl, MinMaxItems) {
  alloc::Arena a;
  A t = insert_all(a, A{}, {5, 1, 9, 3});
  EXPECT_EQ(t.min_node()->key, 1);
  EXPECT_EQ(t.max_node()->key, 9);
  const auto items = t.items();
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
}

TEST(Avl, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  A v1 = insert_all(a, A{}, {1, 2, 3, 4, 5, 6, 7});
  core::Builder<alloc::Arena> b(a);
  A v2 = v1.erase(b, 4);
  b.seal();
  (void)b.commit();
  EXPECT_TRUE(v1.contains(4));
  EXPECT_FALSE(v2.contains(4));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(Avl, SharingAfterInsert) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 2048; ++i) keys.push_back(i);
  A v1 = insert_all(a, A{}, keys);
  core::Builder<alloc::Arena> b(a);
  A v2 = v1.insert(b, 99999, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = A::shared_nodes(v1, v2);
  EXPECT_GE(shared, v1.size() - 30);  // path + rotations only
}

TEST(Avl, InsertOrAssign) {
  alloc::Arena a;
  A t = insert_all(a, A{}, {1, 2, 3});
  A t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 42); });
  EXPECT_EQ(*t2.find(2), 42);
  EXPECT_EQ(*t.find(2), 20);
  EXPECT_TRUE(t2.check_invariants());
}

TEST(Avl, RandomOpsAgainstOracle) {
  alloc::Arena a;
  A t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t k = rng.range(-60, 60);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 250 == 0) ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_TRUE(t.check_invariants());
  const auto items = t.items();
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(Avl, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  A t;
  for (std::int64_t k = 0; k < 150; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 150u);
  A::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- from_sorted -----

TEST(Avl, FromSortedBuildsValidTree) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t k = 0; k < 1000; k += 3) items.emplace_back(k, k * 10);
  A t = test::apply(
      a, [&](auto& b) { return A::from_sorted(b, items.begin(), items.end()); });
  EXPECT_EQ(t.size(), items.size());
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.items(), items);
  // Midpoint build is perfectly balanced: height == ceil(log2(n+1)).
  EXPECT_LE(t.height(), 9u);  // n = 334
}

TEST(Avl, FromSortedEmptyAndSingle) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> none;
  A t0 = test::apply(
      a, [&](auto& b) { return A::from_sorted(b, none.begin(), none.end()); });
  EXPECT_TRUE(t0.empty());
  std::vector<std::pair<std::int64_t, std::int64_t>> one{{7, 70}};
  A t1 = test::apply(
      a, [&](auto& b) { return A::from_sorted(b, one.begin(), one.end()); });
  EXPECT_EQ(t1.size(), 1u);
  EXPECT_EQ(*t1.find(7), 70);
}

// ----- apply_sorted_batch -----

A::BatchOp ains(std::int64_t k, std::int64_t v) {
  return A::BatchOp{A::BatchOpKind::kInsert, k, v};
}

// Empty/all-noop sharing and the three-kind outcome check come from the
// shared batch-oracle harness (test_support.hpp).
TEST(AvlBatch, NoopBatchesShareRoot) {
  test::batch_oracle_noop_shares_root<A>();
}

TEST(AvlBatch, OutcomesAndContents) { test::batch_oracle_outcomes<A>(); }

TEST(AvlBatch, BatchOnEmptyTreeIsBalanced) {
  alloc::Arena a;
  std::vector<A::BatchOp> ops;
  for (std::int64_t k = 0; k < 127; ++k) ops.push_back(ains(k, k));
  std::vector<A::BatchOutcome> out(ops.size());
  A t = test::apply(
      a, [&](auto& b) { return A{}.apply_sorted_batch(b, ops, out); });
  EXPECT_EQ(t.size(), 127u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.height(), 7u);  // perfect tree of 127
}

// The property the AVL batch path is held to, via the shared oracle
// harness: contents (not shape — AVL is history-dependent) must match
// sequential application of the same ops, outcomes must match the
// per-op returns, and the result must be a valid AVL tree.
TEST(AvlBatch, RandomBatchesMatchSequentialApplication) {
  test::batch_oracle_random<A>(4321, 40, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<A>(4322, 20, test::BatchKeyPattern::kClustered);
}

// Bounded scan rides for_each_range; the shared oracle also re-checks the
// range walk and count_range against a std::set reference.
TEST(Avl, ScanMatchesOracle) { test::range_oracle_random<A>(2101); }

// Sorted read batch: one descent-sharing sweep must answer exactly like
// per-key find(), with consistent savings accounting.
TEST(Avl, SortedReadBatchMatchesPerKeyFind) {
  test::read_batch_oracle_random<A>(2111, 30, test::BatchKeyPattern::kUniform);
  test::read_batch_oracle_random<A>(2112, 20,
                                    test::BatchKeyPattern::kClustered);
}

}  // namespace
}  // namespace pathcopy
