// The linearizability checker itself, then the checker applied to real
// recorded histories of every concurrent construction in the library.
//
// Checker validation runs three ways: hand-built histories with known
// verdicts, randomized tiny histories cross-checked against a brute-force
// permutation reference, and a deterministic "lost update" interleaving
// that any sound checker must reject.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "seq/flat_combining.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"

namespace pathcopy {
namespace {

using verify::Event;
using verify::OpType;

Event ev(std::uint64_t inv, std::uint64_t resp, OpType op, std::int64_t key,
         bool result) {
  Event e;
  e.invoke_ts = inv;
  e.response_ts = resp;
  e.op = op;
  e.key = key;
  e.result = result;
  return e;
}

// ----- hand-built histories -----

TEST(LinCheck, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(verify::check_set_linearizability({}));
}

TEST(LinCheck, SequentialValidHistoryAccepted) {
  std::vector<Event> h{
      ev(1, 2, OpType::kInsert, 7, true),
      ev(3, 4, OpType::kContains, 7, true),
      ev(5, 6, OpType::kErase, 7, true),
      ev(7, 8, OpType::kContains, 7, false),
      ev(9, 10, OpType::kInsert, 7, true),
  };
  EXPECT_TRUE(verify::check_set_linearizability(h));
}

TEST(LinCheck, SequentialInvalidHistoryRejected) {
  // erase(7)=true with nothing ever inserted.
  std::vector<Event> h{ev(1, 2, OpType::kErase, 7, true)};
  const auto v = verify::check_set_linearizability(h);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.bad_key, 7);
}

TEST(LinCheck, DoubleSuccessfulInsertRejected) {
  // Non-overlapping successful inserts of the same key with no erase.
  std::vector<Event> h{
      ev(1, 2, OpType::kInsert, 3, true),
      ev(5, 6, OpType::kInsert, 3, true),
  };
  EXPECT_FALSE(verify::check_set_linearizability(h));
}

TEST(LinCheck, ConcurrentDoubleInsertOneMustFail) {
  // Overlapping inserts may order either way, but exactly one can win.
  std::vector<Event> both_true{
      ev(1, 10, OpType::kInsert, 3, true),
      ev(2, 11, OpType::kInsert, 3, true),
  };
  EXPECT_FALSE(verify::check_set_linearizability(both_true));
  std::vector<Event> one_wins{
      ev(1, 10, OpType::kInsert, 3, true),
      ev(2, 11, OpType::kInsert, 3, false),
  };
  EXPECT_TRUE(verify::check_set_linearizability(one_wins));
}

TEST(LinCheck, ConcurrentInsertEraseBothOrdersWork) {
  // insert ∥ erase: erase=true needs insert first; erase=false needs the
  // other order. Both are linearizable — just different points.
  std::vector<Event> erase_after{
      ev(1, 10, OpType::kInsert, 5, true),
      ev(2, 11, OpType::kErase, 5, true),
  };
  EXPECT_TRUE(verify::check_set_linearizability(erase_after));
  std::vector<Event> erase_before{
      ev(1, 10, OpType::kInsert, 5, true),
      ev(2, 11, OpType::kErase, 5, false),
  };
  EXPECT_TRUE(verify::check_set_linearizability(erase_before));
}

TEST(LinCheck, RealTimeOrderIsRespected) {
  // contains(9)=false AFTER insert(9)=true completed: must be rejected —
  // the read cannot be ordered before an update that already finished.
  std::vector<Event> h{
      ev(1, 2, OpType::kInsert, 9, true),
      ev(3, 4, OpType::kContains, 9, false),
  };
  EXPECT_FALSE(verify::check_set_linearizability(h));
  // The same read overlapping the insert is fine (read first).
  std::vector<Event> overlapped{
      ev(1, 5, OpType::kInsert, 9, true),
      ev(2, 4, OpType::kContains, 9, false),
  };
  EXPECT_TRUE(verify::check_set_linearizability(overlapped));
}

TEST(LinCheck, LostUpdateInterleavingRejected) {
  // The classic check-then-act bug, deterministically: A and B both
  // observe key 1 absent (concurrent contains=false), then both report a
  // successful insert, serially, with no erase between.
  std::vector<Event> h{
      ev(1, 4, OpType::kContains, 1, false),
      ev(2, 5, OpType::kContains, 1, false),
      ev(6, 7, OpType::kInsert, 1, true),
      ev(8, 9, OpType::kInsert, 1, true),
  };
  EXPECT_FALSE(verify::check_set_linearizability(h));
}

TEST(LinCheck, KeysAreIndependent) {
  // A violation on key 2 must be found even among valid key-1 traffic.
  std::vector<Event> h{
      ev(1, 2, OpType::kInsert, 1, true),
      ev(3, 4, OpType::kErase, 1, true),
      ev(5, 6, OpType::kInsert, 2, true),
      ev(7, 8, OpType::kInsert, 2, true),
  };
  const auto v = verify::check_set_linearizability(h);
  EXPECT_FALSE(v);
  EXPECT_EQ(v.bad_key, 2);
}

TEST(LinCheck, InitiallyPresentSeedsTheSpec) {
  std::vector<Event> h{ev(1, 2, OpType::kErase, 0, true)};
  EXPECT_TRUE(verify::check_single_key_history(h, /*initially_present=*/true));
  EXPECT_FALSE(verify::check_single_key_history(h, false));
}

// ----- pending operations (response_ts == 0: invoked, never responded) --

TEST(LinCheckPending, PendingInsertMayExplainAReadOfTrue) {
  // contains(4)=true with no COMPLETED insert is only legal if the
  // overlapping pending insert is allowed to linearize first.
  std::vector<Event> completed{ev(2, 3, OpType::kContains, 4, true)};
  std::vector<Event> pending{ev(1, 0, OpType::kInsert, 4, false)};
  EXPECT_TRUE(verify::check_set_linearizability(completed, pending));
  // Without the pending op the same history must be rejected.
  EXPECT_FALSE(verify::check_set_linearizability(completed, {}));
}

TEST(LinCheckPending, PendingOpNeedNotLinearize) {
  // A pending erase overlapping a read of true: ordering the read first
  // works, so the history is fine whether or not the erase took effect.
  std::vector<Event> completed{
      ev(1, 2, OpType::kInsert, 4, true),
      ev(4, 5, OpType::kContains, 4, true),
  };
  std::vector<Event> pending{ev(3, 0, OpType::kErase, 4, false)};
  EXPECT_TRUE(verify::check_set_linearizability(completed, pending));
}

TEST(LinCheckPending, PendingOpCannotRepairRealTimeViolations) {
  // Two non-overlapping successful inserts stay illegal: the pending
  // erase was invoked after both completed, so it cannot sit between
  // them.
  std::vector<Event> completed{
      ev(1, 2, OpType::kInsert, 6, true),
      ev(3, 4, OpType::kInsert, 6, true),
  };
  std::vector<Event> pending{ev(5, 0, OpType::kErase, 6, false)};
  EXPECT_FALSE(verify::check_set_linearizability(completed, pending));
}

TEST(LinCheckPending, PendingOpsNeverForcePrecedence) {
  // A pending contains invoked first blocks nothing: completed ops that
  // started later may still linearize before it.
  std::vector<Event> completed{
      ev(2, 3, OpType::kInsert, 1, true),
      ev(4, 5, OpType::kErase, 1, true),
  };
  std::vector<Event> pending{ev(1, 0, OpType::kContains, 1, false)};
  EXPECT_TRUE(verify::check_set_linearizability(completed, pending));
}

// ----- oversize projections: quiescent splitting and the unchecked
// verdict -----

TEST(LinCheckOversize, SequentialLongHistorySplitsAndPasses) {
  // 200 strictly sequential ops on one key — over the 64-event direct
  // cap, but every boundary is quiescent, so splitting covers it all.
  std::vector<Event> h;
  std::uint64_t t = 1;
  bool present = false;
  for (int i = 0; i < 200; ++i) {
    const bool ins = i % 2 == 0;
    h.push_back(ev(t, t + 1, ins ? OpType::kInsert : OpType::kErase, 9,
                   ins ? !present : present));
    present = ins;
    t += 2;
  }
  const auto v = verify::check_set_linearizability(h);
  EXPECT_TRUE(v);
  EXPECT_TRUE(v.checked);
}

TEST(LinCheckOversize, SplitSegmentsCarryThePresenceBit) {
  // Same shape but the violation sits deep in a late segment: erase=false
  // at a point where the carried presence says the key is there.
  std::vector<Event> h;
  std::uint64_t t = 1;
  for (int i = 0; i < 150; ++i) {
    h.push_back(ev(t, t + 1, i % 2 == 0 ? OpType::kInsert : OpType::kErase,
                   9, true));
    t += 2;
  }
  h.push_back(ev(t, t + 1, OpType::kErase, 9, true));  // key is absent here
  EXPECT_FALSE(verify::check_set_linearizability(h));
}

TEST(LinCheckOversize, UnsplittableRunYieldsUncheckedNotViolation) {
  // 65 mutually overlapping contains ops: no quiescent boundary exists,
  // so the projection cannot be split — verdict must be "unchecked", and
  // ok must stay true (degrade, don't abort or reject).
  std::vector<Event> h;
  for (std::uint64_t i = 0; i < 65; ++i) {
    h.push_back(ev(1 + i, 100 + i, OpType::kContains, 3, false));
  }
  const auto v = verify::check_set_linearizability(h);
  EXPECT_TRUE(v.ok);
  EXPECT_FALSE(v.checked);
  EXPECT_EQ(v.bad_key, 3);
  EXPECT_NE(v.reason.find("unchecked"), std::string::npos);
}

TEST(LinCheckOversize, UncheckedKeyDoesNotMaskARealViolationElsewhere) {
  std::vector<Event> h;
  for (std::uint64_t i = 0; i < 65; ++i) {
    h.push_back(ev(1 + i, 100 + i, OpType::kContains, 3, false));
  }
  // Key 8 holds a hard violation.
  h.push_back(ev(200, 201, OpType::kErase, 8, true));
  const auto v = verify::check_set_linearizability(h);
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.bad_key, 8);
}

// ----- randomized cross-validation against a brute-force reference -----

bool naive_reference(std::vector<Event> ev_list) {
  std::vector<std::size_t> idx(ev_list.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end());
  do {
    // Real-time order: an op may not precede one that finished before it
    // started.
    bool rt_ok = true;
    for (std::size_t a = 0; a + 1 < idx.size() && rt_ok; ++a) {
      for (std::size_t b = a + 1; b < idx.size() && rt_ok; ++b) {
        if (ev_list[idx[b]].response_ts < ev_list[idx[a]].invoke_ts) {
          rt_ok = false;
        }
      }
    }
    if (!rt_ok) continue;
    bool present = false;
    bool spec_ok = true;
    for (const std::size_t i : idx) {
      const Event& e = ev_list[i];
      switch (e.op) {
        case OpType::kInsert:
          if (e.result == present) spec_ok = false;
          present = true;
          break;
        case OpType::kErase:
          if (e.result != present) spec_ok = false;
          present = false;
          break;
        case OpType::kContains:
          if (e.result != present) spec_ok = false;
          break;
      }
      if (!spec_ok) break;
    }
    if (spec_ok) return true;
  } while (std::next_permutation(idx.begin(), idx.end()));
  return false;
}

TEST(LinCheck, AgreesWithBruteForceOnRandomTinyHistories) {
  util::Xoshiro256 rng(1234);
  int accepted = 0;
  int rejected = 0;
  for (int round = 0; round < 600; ++round) {
    const std::size_t n = 2 + rng.below(5);  // 2..6 events
    // Random distinct stamps for 2n endpoints.
    std::vector<std::uint64_t> stamps(2 * n);
    std::iota(stamps.begin(), stamps.end(), 1);
    for (std::size_t i = stamps.size(); i > 1; --i) {
      std::swap(stamps[i - 1], stamps[rng.below(i)]);
    }
    std::vector<Event> h;
    for (std::size_t i = 0; i < n; ++i) {
      const auto a = stamps[2 * i];
      const auto b = stamps[2 * i + 1];
      const OpType op = static_cast<OpType>(rng.below(3));
      h.push_back(ev(std::min(a, b), std::max(a, b), op, 0,
                     rng.chance(1, 2)));
    }
    const bool fast = verify::check_single_key_history(h);
    const bool slow = naive_reference(h);
    ASSERT_EQ(fast, slow) << "round " << round << " n=" << n;
    fast ? ++accepted : ++rejected;
  }
  // The generator must exercise both verdicts for this to mean anything.
  EXPECT_GT(accepted, 50);
  EXPECT_GT(rejected, 50);
}

// ----- real recorded histories from the library's constructions -----

using T = persist::Treap<std::int64_t, std::int64_t>;

TEST(LinHistories, AtomHistoryIsLinearizable) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  constexpr std::int64_t kKeys = 48;
  verify::HistoryRecorder rec(kThreads);
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(
            smr, a);
        util::Xoshiro256 rng(w + 1);
        for (int i = 0; i < kOps; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          const auto kind = rng.below(3);
          if (kind == 0) {
            rec.run(w, OpType::kInsert, k, [&] {
              return atom.update(ctx, [k](T t, auto& b) {
                       return t.insert(b, k, k);
                     }) == core::UpdateResult::kInstalled;
            });
          } else if (kind == 1) {
            rec.run(w, OpType::kErase, k, [&] {
              return atom.update(ctx, [k](T t, auto& b) {
                       return t.erase(b, k);
                     }) == core::UpdateResult::kInstalled;
            });
          } else {
            rec.run(w, OpType::kContains, k, [&] {
              return atom.read(ctx, [k](T t) { return t.contains(k); });
            });
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  const auto verdict = verify::check_set_linearizability(rec.harvest());
  EXPECT_TRUE(verdict) << "key " << verdict.bad_key << ": " << verdict.reason;
}

TEST(LinHistories, CombiningAtomHistoryIsLinearizable) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  constexpr std::int64_t kKeys = 48;
  verify::HistoryRecorder rec(kThreads);
  {
    reclaim::EpochReclaimer smr;
    core::CombiningAtom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, a);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        core::CombiningAtom<T, reclaim::EpochReclaimer,
                            alloc::MallocAlloc>::Ctx ctx(smr, a);
        const unsigned slot = atom.register_slot();
        util::Xoshiro256 rng(w + 1);
        for (int i = 0; i < kOps; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          const auto kind = rng.below(3);
          if (kind == 0) {
            rec.run(w, OpType::kInsert, k,
                    [&] { return atom.insert(ctx, slot, k, k); });
          } else if (kind == 1) {
            rec.run(w, OpType::kErase, k,
                    [&] { return atom.erase(ctx, slot, k); });
          } else {
            rec.run(w, OpType::kContains, k, [&] {
              return atom.read(ctx, [k](T t) { return t.contains(k); });
            });
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  const auto verdict = verify::check_set_linearizability(rec.harvest());
  EXPECT_TRUE(verdict) << "key " << verdict.bad_key << ": " << verdict.reason;
}

TEST(LinHistories, FlatCombiningHistoryIsLinearizable) {
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  constexpr std::int64_t kKeys = 48;
  verify::HistoryRecorder rec(kThreads);
  seq::FlatCombining<seq::SeqTreap<std::int64_t, std::int64_t>> fc;
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const unsigned slot = fc.register_slot();
      util::Xoshiro256 rng(w + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::int64_t k = rng.range(0, kKeys - 1);
        const auto kind = rng.below(3);
        if (kind == 0) {
          rec.run(w, OpType::kInsert, k,
                  [&] { return fc.insert(slot, k, k); });
        } else if (kind == 1) {
          rec.run(w, OpType::kErase, k, [&] { return fc.erase(slot, k); });
        } else {
          rec.run(w, OpType::kContains, k,
                  [&] { return fc.contains(slot, k); });
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto verdict = verify::check_set_linearizability(rec.harvest());
  EXPECT_TRUE(verdict) << "key " << verdict.bad_key << ": " << verdict.reason;
}

}  // namespace
}  // namespace pathcopy
