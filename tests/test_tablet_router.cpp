// TabletRouter properties (store/tablet_router.hpp) and the continuous
// migration throttle (store/rebalancer.hpp).
//
// The router is the continuous rebalancer's planning substrate, so the
// properties under test are exactly what migration correctness leans on:
//   * every key routes to exactly one shard, inside the shard count;
//   * coverage is a half-open partition — tablet index is monotone in
//     the key and a boundary key belongs to the tablet on its right;
//   * split and coalesce preserve the partition pointwise (so a
//     boundary-only flip migrates zero keys — diff() must be empty);
//   * a single-tablet reassignment's diff covers exactly that tablet;
//   * diff() agrees with the pointwise owner comparison on arbitrary
//     table pairs (segments ascending, disjoint, minimal).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "store/rebalancer.hpp"
#include "store/router.hpp"
#include "store/tablet_router.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using TR = store::TabletRouter<std::int64_t>;
using Seg = store::TabletSegment<std::int64_t>;

constexpr std::int64_t kSpace = 1 << 20;

/// A random tablet table: strictly increasing bounds drawn from the
/// keyspace, owners drawn from [0, shards).
TR random_table(util::Xoshiro256& rng, std::size_t tablets,
                std::size_t shards) {
  std::vector<std::int64_t> bounds;
  std::int64_t prev = 0;
  for (std::size_t i = 1; i < tablets; ++i) {
    prev += 1 + rng.range(0, kSpace / static_cast<std::int64_t>(tablets));
    bounds.push_back(prev);
  }
  std::vector<std::size_t> owners;
  for (std::size_t i = 0; i < tablets; ++i) {
    owners.push_back(static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(shards) - 1)));
  }
  return TR{std::move(bounds), std::move(owners)};
}

/// Does `key` fall inside segment sg?
bool in_segment(const Seg& sg, std::int64_t key) {
  if (sg.lo.has_value() && key < *sg.lo) return false;
  if (sg.hi.has_value() && key >= *sg.hi) return false;
  return true;
}

TEST(TabletRouter, DefaultRoutesEverythingToShardZero) {
  const TR r;
  EXPECT_EQ(r.tablet_count(), 1u);
  EXPECT_TRUE(r.compatible(1));
  EXPECT_TRUE(r.compatible(7));
  for (const std::int64_t k : {std::int64_t{-100}, std::int64_t{0},
                               std::int64_t{1} << 40}) {
    EXPECT_EQ(r(k, 1), 0u);
  }
}

TEST(TabletRouter, UniformMatchesRangeRouter) {
  const TR tab = TR::uniform(0, kSpace, 8);
  const store::RangeRouter<std::int64_t> rng_router =
      store::RangeRouter<std::int64_t>::uniform(0, kSpace, 8);
  EXPECT_EQ(tab.tablet_count(), 8u);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t k = rng.range(0, kSpace - 1);
    ASSERT_EQ(tab(k, 8), rng_router(k, 8)) << "key " << k;
  }
}

TEST(TabletRouter, ExactlyOneShardAndMonotoneHalfOpenCoverage) {
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t shards = 1 + static_cast<std::size_t>(rng.range(0, 7));
    const std::size_t tablets = 1 + static_cast<std::size_t>(rng.range(0, 23));
    const TR r = random_table(rng, tablets, shards);
    ASSERT_TRUE(r.compatible(shards));
    // Exactly one shard, in range, and consistent with tablet_of.
    for (int i = 0; i < 2000; ++i) {
      const std::int64_t k = rng.range(0, kSpace + 1000);
      const std::size_t t = r.tablet_of(k);
      ASSERT_LT(r(k, shards), shards);
      ASSERT_EQ(r(k, shards), r.owner(t));
    }
    // Ordered probe: tablet index never decreases as keys ascend.
    std::size_t last = 0;
    for (std::int64_t k = 0; k <= kSpace; k += kSpace / 512) {
      const std::size_t t = r.tablet_of(k);
      ASSERT_GE(t, last);
      last = t;
    }
    // Half-open boundaries: a boundary key belongs to the right tablet,
    // its predecessor to the left.
    for (std::size_t b = 0; b < r.bounds().size(); ++b) {
      const std::int64_t edge = r.bounds()[b];
      EXPECT_EQ(r.tablet_of(edge), b + 1);
      EXPECT_EQ(r.tablet_of(edge - 1), b);
    }
  }
}

TEST(TabletRouter, SplitPreservesPartitionAndDiffsEmpty) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t shards = 4;
    const TR r = random_table(rng, 6, shards);
    // Pick a tablet wide enough to cut inside.
    for (std::size_t t = 0; t < r.tablet_count(); ++t) {
      const std::int64_t lo =
          r.tablet_lo(t) != nullptr ? *r.tablet_lo(t) : -kSpace;
      const std::int64_t hi =
          r.tablet_hi(t) != nullptr ? *r.tablet_hi(t) : 2 * kSpace;
      if (hi - lo < 10) continue;
      const std::int64_t c1 = lo + (hi - lo) / 3;
      const std::int64_t c2 = lo + 2 * (hi - lo) / 3;
      const std::vector<std::int64_t> cuts = {c1, c2};
      const TR split = r.with_split(t, cuts);
      ASSERT_EQ(split.tablet_count(), r.tablet_count() + 2);
      // Pointwise identical routing — a split-only flip moves zero keys.
      for (int i = 0; i < 2000; ++i) {
        const std::int64_t k = rng.range(-kSpace, 2 * kSpace);
        ASSERT_EQ(split(k, shards), r(k, shards)) << "key " << k;
      }
      EXPECT_TRUE(TR::diff(r, split).empty());
      EXPECT_TRUE(TR::diff(split, r).empty());
      break;
    }
  }
}

TEST(TabletRouter, CoalescePreservesPartitionAndDiffsEmpty) {
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    // Few shards over many tablets guarantees same-owner neighbors.
    const TR r = random_table(rng, 16, 2);
    const TR merged = r.coalesced();
    EXPECT_LE(merged.tablet_count(), r.tablet_count());
    for (int i = 0; i < 4000; ++i) {
      const std::int64_t k = rng.range(-kSpace, 2 * kSpace);
      ASSERT_EQ(merged(k, 2), r(k, 2)) << "key " << k;
    }
    EXPECT_TRUE(TR::diff(r, merged).empty());
    // Idempotent: no same-owner neighbors remain.
    EXPECT_EQ(merged.coalesced().tablet_count(), merged.tablet_count());
  }
}

TEST(TabletRouter, WithOwnerDiffCoversExactlyThatTablet) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t shards = 6;
    const TR r = random_table(rng, 9, shards);
    const std::size_t t =
        static_cast<std::size_t>(rng.range(0, 8));
    const std::size_t from = r.owner(t);
    const std::size_t to = (from + 1) % shards;
    const TR moved = r.with_owner(t, to);
    const std::vector<Seg> segs = TR::diff(r, moved);
    // Probe: exactly the keys inside tablet t moved, from -> to.
    for (int i = 0; i < 4000; ++i) {
      const std::int64_t k = rng.range(-kSpace, 2 * kSpace);
      const bool should_move = r.tablet_of(k) == t;
      bool covered = false;
      for (const Seg& sg : segs) {
        if (!in_segment(sg, k)) continue;
        covered = true;
        EXPECT_EQ(sg.src, from);
        EXPECT_EQ(sg.dst, to);
      }
      ASSERT_EQ(covered, should_move) << "key " << k;
    }
  }
}

TEST(TabletRouter, DiffMatchesPointwiseOwnerChange) {
  util::Xoshiro256 rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t shards = 5;
    const TR a = random_table(rng, 1 + static_cast<std::size_t>(rng.range(0, 11)),
                              shards);
    const TR b = random_table(rng, 1 + static_cast<std::size_t>(rng.range(0, 11)),
                              shards);
    const std::vector<Seg> segs = TR::diff(a, b);
    // Segments are ascending and disjoint.
    for (std::size_t i = 1; i < segs.size(); ++i) {
      ASSERT_TRUE(segs[i - 1].hi.has_value());
      ASSERT_TRUE(segs[i].lo.has_value());
      ASSERT_LE(*segs[i - 1].hi, *segs[i].lo);
    }
    // Minimality: a segment never straddles keys whose (src, dst) pair
    // disagrees with the segment's, and adjacent segments with touching
    // edges differ in their pair (else they would have coalesced).
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (*segs[i - 1].hi == *segs[i].lo) {
        ASSERT_TRUE(segs[i - 1].src != segs[i].src ||
                    segs[i - 1].dst != segs[i].dst);
      }
    }
    // Pointwise agreement.
    for (int i = 0; i < 4000; ++i) {
      const std::int64_t k = rng.range(-kSpace, 2 * kSpace);
      const std::size_t sa = a(k, shards);
      const std::size_t sb = b(k, shards);
      bool covered = false;
      for (const Seg& sg : segs) {
        if (!in_segment(sg, k)) continue;
        covered = true;
        ASSERT_EQ(sg.src, sa) << "key " << k;
        ASSERT_EQ(sg.dst, sb) << "key " << k;
      }
      ASSERT_EQ(covered, sa != sb) << "key " << k;
    }
  }
}

TEST(TabletRouter, TabletsPerShardCounts) {
  const TR r{{100, 200, 300}, {1, 0, 1, 2}};
  const std::vector<std::size_t> counts = r.tablets_per_shard(4);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_FALSE(r.compatible(2));  // owner 2 out of range
  EXPECT_TRUE(r.compatible(3));
}

// ----- MigrationThrottle -----

TEST(MigrationThrottle, AdmitsUpToBudgetThenDefers) {
  // A huge interval makes the test deterministic: no refill can happen.
  store::MigrationThrottle th(1000, std::chrono::milliseconds(60000));
  EXPECT_TRUE(th.admit(600));
  th.charge(600);
  EXPECT_TRUE(th.admit(400));
  th.charge(400);
  EXPECT_FALSE(th.admit(1));  // bucket dry
  EXPECT_EQ(th.peak_interval_keys(), 1000u);
  EXPECT_EQ(th.budget_keys(), 1000u);
}

TEST(MigrationThrottle, FullBucketAdmitsOversizeMoveOnce) {
  store::MigrationThrottle th(100, std::chrono::milliseconds(60000));
  // A tablet bigger than the whole budget must still be able to move —
  // but only off a full bucket, and the peak reports the overshoot.
  EXPECT_TRUE(th.admit(250));
  th.charge(250);
  EXPECT_FALSE(th.admit(250));
  EXPECT_FALSE(th.admit(1));
  EXPECT_EQ(th.peak_interval_keys(), 250u);
}

TEST(MigrationThrottle, RefillsAtIntervalBoundary) {
  store::MigrationThrottle th(100, std::chrono::milliseconds(20));
  EXPECT_TRUE(th.admit(100));
  th.charge(100);
  EXPECT_FALSE(th.admit(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(th.admit(100));  // new interval, fresh bucket
  th.charge(40);
  // The window restarted too: peak stays the old interval's 100.
  EXPECT_EQ(th.peak_interval_keys(), 100u);
}

}  // namespace
}  // namespace pathcopy
