#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/treap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;

// Pre-order (key, prio) serialization: equal sequences <=> identical shape.
void serialize(const T::Node* n, std::vector<std::pair<std::int64_t, std::uint64_t>>& out) {
  if (n == nullptr) return;
  out.emplace_back(n->key, n->prio);
  serialize(n->left, out);
  serialize(n->right, out);
}

std::vector<std::pair<std::int64_t, std::uint64_t>> shape_of(const T& t) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  serialize(t.root_node(), out);
  return out;
}

template <class Alloc>
T insert_all(Alloc& a, T t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

TEST(Treap, EmptyBasics) {
  T t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.min_node(), nullptr);
  EXPECT_EQ(t.max_node(), nullptr);
  EXPECT_EQ(t.kth(0), nullptr);
  EXPECT_EQ(t.rank(5), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.height(), 0u);
}

TEST(Treap, SingleInsert) {
  alloc::Arena a;
  T t = test::apply(a, [&](auto& b) { return T{}.insert(b, 5, 50); });
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains(5));
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(*t.find(5), 50);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, DuplicateInsertReturnsSameRoot) {
  alloc::Arena a;
  T t = test::apply(a, [&](auto& b) { return T{}.insert(b, 5, 50); });
  core::Builder<alloc::Arena> b(a);
  T t2 = t.insert(b, 5, 99);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());  // semantic no-op: same version
  EXPECT_EQ(b.fresh_count(), 0u);          // and no allocations at all
  b.rollback();
  EXPECT_EQ(*t.find(5), 50);
}

TEST(Treap, EraseAbsentReturnsSameRoot) {
  alloc::Arena a;
  T t = test::apply(a, [&](auto& b) { return T{}.insert(b, 5, 50); });
  core::Builder<alloc::Arena> b(a);
  T t2 = t.erase(b, 7);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());
  b.rollback();
}

TEST(Treap, InsertEraseRoundTrip) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {3, 1, 4, 1, 5, 9, 2, 6});
  EXPECT_EQ(t.size(), 7u);  // duplicate 1 collapsed
  t = test::apply(a, [&](auto& b) { return t.erase(b, 4); });
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, ItemsAreSorted) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {9, 1, 8, 2, 7, 3});
  const auto items = t.items();
  ASSERT_EQ(items.size(), 6u);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_EQ(items.front().first, 1);
  EXPECT_EQ(items.back().first, 9);
}

TEST(Treap, ValuesFollowKeys) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30});
  EXPECT_EQ(*t.find(10), 100);
  EXPECT_EQ(*t.find(20), 200);
  EXPECT_EQ(*t.find(30), 300);
}

TEST(Treap, MinMax) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {5, -3, 12, 0});
  ASSERT_NE(t.min_node(), nullptr);
  EXPECT_EQ(t.min_node()->key, -3);
  EXPECT_EQ(t.max_node()->key, 12);
}

TEST(Treap, FloorCeiling) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30});
  EXPECT_EQ(t.floor_node(25)->key, 20);
  EXPECT_EQ(t.floor_node(20)->key, 20);
  EXPECT_EQ(t.floor_node(5), nullptr);
  EXPECT_EQ(t.ceiling_node(25)->key, 30);
  EXPECT_EQ(t.ceiling_node(30)->key, 30);
  EXPECT_EQ(t.ceiling_node(35), nullptr);
}

TEST(Treap, RankAndKthAgree) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i * 3);
  T t = insert_all(a, T{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto* n = t.kth(i);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->key, static_cast<std::int64_t>(i * 3));
    EXPECT_EQ(t.rank(n->key), i);
  }
  EXPECT_EQ(t.kth(keys.size()), nullptr);
  EXPECT_EQ(t.rank(1000), 100u);  // all keys < 1000
  EXPECT_EQ(t.rank(1), 1u);       // only key 0
}

TEST(Treap, CountRange) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(t.count_range(3, 6), 3u);  // {3,4,5}
  EXPECT_EQ(t.count_range(1, 9), 8u);
  EXPECT_EQ(t.count_range(5, 5), 0u);
  EXPECT_EQ(t.count_range(9, 3), 0u);  // inverted range
}

TEST(Treap, ForEachRangeRespectsBounds) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<std::int64_t> seen;
  t.for_each_range(3, 7, [&](const std::int64_t& k, const std::int64_t&) {
    seen.push_back(k);
  });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{3, 4, 5, 6}));
}

TEST(Treap, CanonicalShapeIndependentOfInsertOrder) {
  alloc::Arena a;
  std::vector<std::int64_t> keys{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 42, -5};
  T t1 = insert_all(a, T{}, keys);
  std::reverse(keys.begin(), keys.end());
  T t2 = insert_all(a, T{}, keys);
  EXPECT_EQ(shape_of(t1), shape_of(t2));
}

TEST(Treap, EraseThenReinsertRestoresShape) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto before = shape_of(t);
  T t2 = test::apply(a, [&](auto& b) { return t.erase(b, 5); });
  T t3 = test::apply(a, [&](auto& b) { return t2.insert(b, 5, 50); });
  EXPECT_EQ(shape_of(t3), before);
}

TEST(Treap, FromSortedMatchesIncrementalShape) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 500; ++i) {
    items.emplace_back(i * 7, i);
    keys.push_back(i * 7);
  }
  T bulk = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  EXPECT_TRUE(bulk.check_invariants());
  EXPECT_EQ(bulk.size(), 500u);

  std::vector<std::int64_t> shuffled = keys;
  util::Xoshiro256 rng(11);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }
  T inc;
  for (const auto k : shuffled) {
    inc = test::apply(a, [&](auto& b) { return inc.insert(b, k, k / 7); });
  }
  EXPECT_EQ(shape_of(bulk), shape_of(inc));
}

TEST(Treap, FromSortedEmptyAndSingle) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> none;
  T t0 = test::apply(a, [&](auto& b) {
    return T::from_sorted(b, none.begin(), none.end());
  });
  EXPECT_TRUE(t0.empty());
  std::vector<std::pair<std::int64_t, std::int64_t>> one{{4, 40}};
  T t1 = test::apply(a, [&](auto& b) {
    return T::from_sorted(b, one.begin(), one.end());
  });
  EXPECT_EQ(t1.size(), 1u);
  EXPECT_EQ(*t1.find(4), 40);
}

TEST(Treap, SplitMergeRoundTrip) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 64; ++i) keys.push_back(i);
  T t = insert_all(a, T{}, keys);
  auto [lo, hi] = test::apply(a, [&](auto& b) { return T::split(b, t, 20); });
  EXPECT_EQ(lo.size(), 20u);
  EXPECT_EQ(hi.size(), 44u);
  EXPECT_TRUE(lo.check_invariants());
  EXPECT_TRUE(hi.check_invariants());
  EXPECT_EQ(lo.max_node()->key, 19);
  EXPECT_EQ(hi.min_node()->key, 20);
  T joined = test::apply(a, [&](auto& b) { return T::merge(b, lo, hi); });
  EXPECT_EQ(shape_of(joined), shape_of(t));  // canonical form again
}

TEST(Treap, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  T v1 = insert_all(a, T{}, {1, 2, 3, 4, 5});
  const auto v1_shape = shape_of(v1);
  core::Builder<alloc::Arena> b(a);
  T v2 = v1.insert(b, 6, 60);
  b.seal();
  (void)b.commit();  // keep superseded nodes alive: v1 still references them
  EXPECT_EQ(shape_of(v1), v1_shape);
  EXPECT_EQ(v1.size(), 5u);
  EXPECT_EQ(v2.size(), 6u);
  EXPECT_FALSE(v1.contains(6));
  EXPECT_TRUE(v2.contains(6));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(Treap, StructuralSharingAfterInsert) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 1024; ++i) keys.push_back(i);
  T v1 = insert_all(a, T{}, keys);
  core::Builder<alloc::Arena> b(a);
  T v2 = v1.insert(b, 5000, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = T::shared_nodes(v1, v2);
  // Only the copied path is new: sharing covers all but O(log n) nodes.
  EXPECT_GE(shared, v1.size() - 4 * 11);
  EXPECT_LT(shared, v2.size());
}

TEST(Treap, InsertCopiesOnlyLogarithmicallyManyNodes) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < 100000; ++i) items.emplace_back(i, i);
  T t = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  core::Builder<alloc::Arena> b(a);
  (void)t.insert(b, -42, 0);
  // Expected treap height is ~1.39 log2 n; split/merge allocates at most
  // about twice the path length. 120 is a very generous cap for n = 1e5.
  EXPECT_LE(b.stats().created, 120u);
  EXPECT_GE(b.stats().created, 2u);
  b.rollback();
}

TEST(Treap, HeightIsLogarithmic) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < 10000; ++i) items.emplace_back(i, i);
  T t = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  // log2(1e4) ~ 13.3; random treap height concentrates below ~3 log2 n.
  EXPECT_LE(t.height(), 60u);
  EXPECT_GE(t.height(), 13u);
}

TEST(Treap, EraseMin) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {5, 3, 9, 1});
  t = test::apply(a, [&](auto& b) { return t.erase_min(b); });
  EXPECT_EQ(t.min_node()->key, 3);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.check_invariants());
  T empty;
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(empty.erase_min(b).root_ptr(), nullptr);
  b.rollback();
}

TEST(Treap, InsertOrAssignOverwrites) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3});
  T t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 999); });
  EXPECT_EQ(*t2.find(2), 999);
  EXPECT_EQ(t2.size(), 3u);
  EXPECT_NE(t2.root_ptr(), t.root_ptr());  // assignment makes a new version
  EXPECT_TRUE(t2.check_invariants());
  // Shape unchanged: only values differ.
  EXPECT_EQ(shape_of(t2), shape_of(t));
}

TEST(Treap, PathToKeyEndsAtKey) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto path = t.path_to(5);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), t.root_node());
  EXPECT_EQ(path.back()->key, 5);
}

TEST(Treap, RandomOpsAgainstOracle) {
  alloc::Arena a;
  T t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = rng.range(-50, 50);
    if (rng.chance(1, 2)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
  }
  EXPECT_TRUE(t.check_invariants());
  const auto items = t.items();
  ASSERT_EQ(items.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(Treap, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  T t;
  for (std::int64_t k = 0; k < 200; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 200u);
  T::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Treap, PriorityIsDeterministic) {
  EXPECT_EQ(T::priority_of(42), T::priority_of(42));
  EXPECT_NE(T::priority_of(42), T::priority_of(43));
}

// ----- apply_sorted_batch -----

T::BatchOp ins(std::int64_t k, std::int64_t v) {
  return T::BatchOp{T::BatchOpKind::kInsert, k, v};
}
T::BatchOp era(std::int64_t k) {
  return T::BatchOp{T::BatchOpKind::kErase, k, std::nullopt};
}
T::BatchOp asg(std::int64_t k, std::int64_t v) {
  return T::BatchOp{T::BatchOpKind::kAssign, k, v};
}

TEST(TreapBatch, EmptyBatchReturnsSameRoot) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  std::vector<T::BatchOutcome> out;
  T t2 = t.apply_sorted_batch(b, {}, out);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(TreapBatch, AllNoopBatchSharesRoot) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30});
  core::Builder<alloc::Arena> b(a);
  // Inserts of present keys + erases of absent keys: nothing changes, and
  // the whole version is shared (no copies at all).
  std::vector<T::BatchOp> ops{ins(10, 99), era(15), ins(30, 99), era(40)};
  std::vector<T::BatchOutcome> out(ops.size());
  T t2 = t.apply_sorted_batch(b, ops, out);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  EXPECT_EQ(out[0], T::BatchOutcome::kNoop);
  EXPECT_EQ(out[1], T::BatchOutcome::kNoop);
  EXPECT_EQ(out[2], T::BatchOutcome::kNoop);
  EXPECT_EQ(out[3], T::BatchOutcome::kNoop);
  EXPECT_EQ(*t2.find(10), 100);  // set-style insert kept the old value
  b.rollback();
}

TEST(TreapBatch, OutcomesAndContents) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30});
  std::vector<T::BatchOp> ops{ins(5, 55), era(10), asg(20, 2000),
                              asg(25, 2500), ins(30, 999)};
  std::vector<T::BatchOutcome> out(ops.size());
  T t2 = test::apply(
      a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });
  EXPECT_EQ(out[0], T::BatchOutcome::kInserted);
  EXPECT_EQ(out[1], T::BatchOutcome::kErased);
  EXPECT_EQ(out[2], T::BatchOutcome::kAssigned);
  EXPECT_EQ(out[3], T::BatchOutcome::kInserted);  // assign on absent key
  EXPECT_EQ(out[4], T::BatchOutcome::kNoop);
  EXPECT_EQ(t2.size(), 4u);
  EXPECT_EQ(*t2.find(5), 55);
  EXPECT_FALSE(t2.contains(10));
  EXPECT_EQ(*t2.find(20), 2000);
  EXPECT_EQ(*t2.find(25), 2500);
  EXPECT_EQ(*t2.find(30), 300);
  EXPECT_TRUE(t2.check_invariants());
}

TEST(TreapBatch, BatchOnEmptyTreeBuildsCanonicalShape) {
  alloc::Arena a;
  std::vector<T::BatchOp> ops{ins(1, 10), era(2), ins(3, 30), asg(4, 40),
                              era(5), ins(6, 60)};
  std::vector<T::BatchOutcome> out(ops.size());
  T batch = test::apply(
      a, [&](auto& b) { return T{}.apply_sorted_batch(b, ops, out); });
  T seq = insert_all(a, T{}, {1, 3, 6});
  seq = test::apply(a, [&](auto& b) { return seq.insert(b, 4, 40); });
  EXPECT_EQ(shape_of(batch), shape_of(seq));
  EXPECT_EQ(out[1], T::BatchOutcome::kNoop);
  EXPECT_EQ(out[3], T::BatchOutcome::kInserted);
  EXPECT_TRUE(batch.check_invariants());
}

// The canonical-form property test the batch path is held to: for random
// op batches on random starting sets, one sorted sweep must produce a
// tree structurally identical (shape, keys, values) to applying the same
// ops one at a time, and report outcomes matching the per-op returns.
TEST(TreapBatch, RandomBatchesMatchSequentialApplication) {
  util::Xoshiro256 rng(1234);
  for (int round = 0; round < 60; ++round) {
    // Arena allocator: individual frees are no-ops, so the batch and the
    // sequential reference can both be applied to the same starting
    // version (each superseding its copy of the spine) without
    // invalidating the other.
    alloc::Arena a;
    {
      const std::int64_t key_range = 1 + static_cast<std::int64_t>(rng.range(0, 400));
      T t;
      std::vector<std::int64_t> initial;
      for (int i = 0; i < 120; ++i) initial.push_back(rng.range(0, key_range));
      std::sort(initial.begin(), initial.end());
      initial.erase(std::unique(initial.begin(), initial.end()), initial.end());
      for (const auto k : initial) {
        t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 7); });
      }

      // Random sorted, key-unique batch mixing all three kinds.
      std::vector<T::BatchOp> ops;
      const int batch_size = 1 + static_cast<int>(rng.range(0, 40));
      std::set<std::int64_t> used;
      for (int i = 0; i < batch_size; ++i) {
        const std::int64_t k = rng.range(0, key_range);
        if (!used.insert(k).second) continue;
        const auto roll = rng.range(0, 2);
        if (roll == 0) {
          ops.push_back(ins(k, k * 100 + 1));
        } else if (roll == 1) {
          ops.push_back(era(k));
        } else {
          ops.push_back(asg(k, k * 100 + 2));
        }
      }
      std::sort(ops.begin(), ops.end(),
                [](const T::BatchOp& x, const T::BatchOp& y) {
                  return x.key < y.key;
                });

      std::vector<T::BatchOutcome> out(ops.size());
      T batch = test::apply(
          a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });

      // Sequential reference + expected outcomes from per-op semantics.
      T seq = t;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const T::BatchOp& op = ops[i];
        const bool was_present = seq.contains(op.key);
        seq = test::apply(a, [&](auto& b) {
          switch (op.kind) {
            case T::BatchOpKind::kInsert:
              return seq.insert(b, op.key, *op.value);
            case T::BatchOpKind::kErase:
              return seq.erase(b, op.key);
            default:
              return seq.insert_or_assign(b, op.key, *op.value);
          }
        });
        T::BatchOutcome expect;
        switch (op.kind) {
          case T::BatchOpKind::kInsert:
            expect = was_present ? T::BatchOutcome::kNoop
                                 : T::BatchOutcome::kInserted;
            break;
          case T::BatchOpKind::kErase:
            expect = was_present ? T::BatchOutcome::kErased
                                 : T::BatchOutcome::kNoop;
            break;
          default:
            expect = was_present ? T::BatchOutcome::kAssigned
                                 : T::BatchOutcome::kInserted;
            break;
        }
        ASSERT_EQ(out[i], expect) << "round " << round << " op " << i;
      }

      ASSERT_EQ(shape_of(batch), shape_of(seq)) << "round " << round;
      ASSERT_EQ(batch.items(), seq.items()) << "round " << round;
      ASSERT_TRUE(batch.check_invariants());
    }
  }
}

}  // namespace
}  // namespace pathcopy
