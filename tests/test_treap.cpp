#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/treap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;

// Pre-order (key, prio) serialization: equal sequences <=> identical shape.
void serialize(const T::Node* n, std::vector<std::pair<std::int64_t, std::uint64_t>>& out) {
  if (n == nullptr) return;
  out.emplace_back(n->key, n->prio);
  serialize(n->left, out);
  serialize(n->right, out);
}

std::vector<std::pair<std::int64_t, std::uint64_t>> shape_of(const T& t) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  serialize(t.root_node(), out);
  return out;
}

template <class Alloc>
T insert_all(Alloc& a, T t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

TEST(Treap, EmptyBasics) {
  T t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.min_node(), nullptr);
  EXPECT_EQ(t.max_node(), nullptr);
  EXPECT_EQ(t.kth(0), nullptr);
  EXPECT_EQ(t.rank(5), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.height(), 0u);
}

TEST(Treap, SingleInsert) {
  alloc::Arena a;
  T t = test::apply(a, [&](auto& b) { return T{}.insert(b, 5, 50); });
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains(5));
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(*t.find(5), 50);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, DuplicateInsertReturnsSameRoot) {
  alloc::Arena a;
  T t = test::apply(a, [&](auto& b) { return T{}.insert(b, 5, 50); });
  core::Builder<alloc::Arena> b(a);
  T t2 = t.insert(b, 5, 99);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());  // semantic no-op: same version
  EXPECT_EQ(b.fresh_count(), 0u);          // and no allocations at all
  b.rollback();
  EXPECT_EQ(*t.find(5), 50);
}

TEST(Treap, EraseAbsentReturnsSameRoot) {
  alloc::Arena a;
  T t = test::apply(a, [&](auto& b) { return T{}.insert(b, 5, 50); });
  core::Builder<alloc::Arena> b(a);
  T t2 = t.erase(b, 7);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());
  b.rollback();
}

TEST(Treap, InsertEraseRoundTrip) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {3, 1, 4, 1, 5, 9, 2, 6});
  EXPECT_EQ(t.size(), 7u);  // duplicate 1 collapsed
  t = test::apply(a, [&](auto& b) { return t.erase(b, 4); });
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, ItemsAreSorted) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {9, 1, 8, 2, 7, 3});
  const auto items = t.items();
  ASSERT_EQ(items.size(), 6u);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_EQ(items.front().first, 1);
  EXPECT_EQ(items.back().first, 9);
}

TEST(Treap, ValuesFollowKeys) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30});
  EXPECT_EQ(*t.find(10), 100);
  EXPECT_EQ(*t.find(20), 200);
  EXPECT_EQ(*t.find(30), 300);
}

TEST(Treap, MinMax) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {5, -3, 12, 0});
  ASSERT_NE(t.min_node(), nullptr);
  EXPECT_EQ(t.min_node()->key, -3);
  EXPECT_EQ(t.max_node()->key, 12);
}

TEST(Treap, FloorCeiling) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {10, 20, 30});
  EXPECT_EQ(t.floor_node(25)->key, 20);
  EXPECT_EQ(t.floor_node(20)->key, 20);
  EXPECT_EQ(t.floor_node(5), nullptr);
  EXPECT_EQ(t.ceiling_node(25)->key, 30);
  EXPECT_EQ(t.ceiling_node(30)->key, 30);
  EXPECT_EQ(t.ceiling_node(35), nullptr);
}

TEST(Treap, RankAndKthAgree) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i * 3);
  T t = insert_all(a, T{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto* n = t.kth(i);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->key, static_cast<std::int64_t>(i * 3));
    EXPECT_EQ(t.rank(n->key), i);
  }
  EXPECT_EQ(t.kth(keys.size()), nullptr);
  EXPECT_EQ(t.rank(1000), 100u);  // all keys < 1000
  EXPECT_EQ(t.rank(1), 1u);       // only key 0
}

TEST(Treap, CountRange) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(t.count_range(3, 6), 3u);  // {3,4,5}
  EXPECT_EQ(t.count_range(1, 9), 8u);
  EXPECT_EQ(t.count_range(5, 5), 0u);
  EXPECT_EQ(t.count_range(9, 3), 0u);  // inverted range
}

TEST(Treap, ForEachRangeRespectsBounds) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<std::int64_t> seen;
  t.for_each_range(3, 7, [&](const std::int64_t& k, const std::int64_t&) {
    seen.push_back(k);
  });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{3, 4, 5, 6}));
}

TEST(Treap, CanonicalShapeIndependentOfInsertOrder) {
  alloc::Arena a;
  std::vector<std::int64_t> keys{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 42, -5};
  T t1 = insert_all(a, T{}, keys);
  std::reverse(keys.begin(), keys.end());
  T t2 = insert_all(a, T{}, keys);
  EXPECT_EQ(shape_of(t1), shape_of(t2));
}

TEST(Treap, EraseThenReinsertRestoresShape) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto before = shape_of(t);
  T t2 = test::apply(a, [&](auto& b) { return t.erase(b, 5); });
  T t3 = test::apply(a, [&](auto& b) { return t2.insert(b, 5, 50); });
  EXPECT_EQ(shape_of(t3), before);
}

TEST(Treap, FromSortedMatchesIncrementalShape) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 500; ++i) {
    items.emplace_back(i * 7, i);
    keys.push_back(i * 7);
  }
  T bulk = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  EXPECT_TRUE(bulk.check_invariants());
  EXPECT_EQ(bulk.size(), 500u);

  std::vector<std::int64_t> shuffled = keys;
  util::Xoshiro256 rng(11);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }
  T inc;
  for (const auto k : shuffled) {
    inc = test::apply(a, [&](auto& b) { return inc.insert(b, k, k / 7); });
  }
  EXPECT_EQ(shape_of(bulk), shape_of(inc));
}

TEST(Treap, FromSortedEmptyAndSingle) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> none;
  T t0 = test::apply(a, [&](auto& b) {
    return T::from_sorted(b, none.begin(), none.end());
  });
  EXPECT_TRUE(t0.empty());
  std::vector<std::pair<std::int64_t, std::int64_t>> one{{4, 40}};
  T t1 = test::apply(a, [&](auto& b) {
    return T::from_sorted(b, one.begin(), one.end());
  });
  EXPECT_EQ(t1.size(), 1u);
  EXPECT_EQ(*t1.find(4), 40);
}

TEST(Treap, SplitMergeRoundTrip) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 64; ++i) keys.push_back(i);
  T t = insert_all(a, T{}, keys);
  auto [lo, hi] = test::apply(a, [&](auto& b) { return T::split(b, t, 20); });
  EXPECT_EQ(lo.size(), 20u);
  EXPECT_EQ(hi.size(), 44u);
  EXPECT_TRUE(lo.check_invariants());
  EXPECT_TRUE(hi.check_invariants());
  EXPECT_EQ(lo.max_node()->key, 19);
  EXPECT_EQ(hi.min_node()->key, 20);
  T joined = test::apply(a, [&](auto& b) { return T::merge(b, lo, hi); });
  EXPECT_EQ(shape_of(joined), shape_of(t));  // canonical form again
}

TEST(Treap, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  T v1 = insert_all(a, T{}, {1, 2, 3, 4, 5});
  const auto v1_shape = shape_of(v1);
  core::Builder<alloc::Arena> b(a);
  T v2 = v1.insert(b, 6, 60);
  b.seal();
  (void)b.commit();  // keep superseded nodes alive: v1 still references them
  EXPECT_EQ(shape_of(v1), v1_shape);
  EXPECT_EQ(v1.size(), 5u);
  EXPECT_EQ(v2.size(), 6u);
  EXPECT_FALSE(v1.contains(6));
  EXPECT_TRUE(v2.contains(6));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(Treap, StructuralSharingAfterInsert) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 1024; ++i) keys.push_back(i);
  T v1 = insert_all(a, T{}, keys);
  core::Builder<alloc::Arena> b(a);
  T v2 = v1.insert(b, 5000, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = T::shared_nodes(v1, v2);
  // Only the copied path is new: sharing covers all but O(log n) nodes.
  EXPECT_GE(shared, v1.size() - 4 * 11);
  EXPECT_LT(shared, v2.size());
}

TEST(Treap, InsertCopiesOnlyLogarithmicallyManyNodes) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < 100000; ++i) items.emplace_back(i, i);
  T t = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  core::Builder<alloc::Arena> b(a);
  (void)t.insert(b, -42, 0);
  // Expected treap height is ~1.39 log2 n; split/merge allocates at most
  // about twice the path length. 120 is a very generous cap for n = 1e5.
  EXPECT_LE(b.stats().created, 120u);
  EXPECT_GE(b.stats().created, 2u);
  b.rollback();
}

TEST(Treap, HeightIsLogarithmic) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t i = 0; i < 10000; ++i) items.emplace_back(i, i);
  T t = test::apply(
      a, [&](auto& b) { return T::from_sorted(b, items.begin(), items.end()); });
  // log2(1e4) ~ 13.3; random treap height concentrates below ~3 log2 n.
  EXPECT_LE(t.height(), 60u);
  EXPECT_GE(t.height(), 13u);
}

TEST(Treap, EraseMin) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {5, 3, 9, 1});
  t = test::apply(a, [&](auto& b) { return t.erase_min(b); });
  EXPECT_EQ(t.min_node()->key, 3);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.check_invariants());
  T empty;
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(empty.erase_min(b).root_ptr(), nullptr);
  b.rollback();
}

TEST(Treap, InsertOrAssignOverwrites) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3});
  T t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 999); });
  EXPECT_EQ(*t2.find(2), 999);
  EXPECT_EQ(t2.size(), 3u);
  EXPECT_NE(t2.root_ptr(), t.root_ptr());  // assignment makes a new version
  EXPECT_TRUE(t2.check_invariants());
  // Shape unchanged: only values differ.
  EXPECT_EQ(shape_of(t2), shape_of(t));
}

TEST(Treap, PathToKeyEndsAtKey) {
  alloc::Arena a;
  T t = insert_all(a, T{}, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto path = t.path_to(5);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), t.root_node());
  EXPECT_EQ(path.back()->key, 5);
}

TEST(Treap, RandomOpsAgainstOracle) {
  alloc::Arena a;
  T t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = rng.range(-50, 50);
    if (rng.chance(1, 2)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
  }
  EXPECT_TRUE(t.check_invariants());
  const auto items = t.items();
  ASSERT_EQ(items.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(Treap, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  T t;
  for (std::int64_t k = 0; k < 200; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 200u);
  T::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Treap, PriorityIsDeterministic) {
  EXPECT_EQ(T::priority_of(42), T::priority_of(42));
  EXPECT_NE(T::priority_of(42), T::priority_of(43));
}

// ----- apply_sorted_batch -----

T::BatchOp ins(std::int64_t k, std::int64_t v) {
  return T::BatchOp{T::BatchOpKind::kInsert, k, v};
}
T::BatchOp era(std::int64_t k) {
  return T::BatchOp{T::BatchOpKind::kErase, k, std::nullopt};
}
T::BatchOp asg(std::int64_t k, std::int64_t v) {
  return T::BatchOp{T::BatchOpKind::kAssign, k, v};
}

// Empty/all-noop sharing and the three-kind outcome check come from the
// shared batch-oracle harness (test_support.hpp), instantiated for every
// SupportsSortedBatch structure.
TEST(TreapBatch, NoopBatchesShareRoot) {
  test::batch_oracle_noop_shares_root<T>();
}

TEST(TreapBatch, OutcomesAndContents) { test::batch_oracle_outcomes<T>(); }

TEST(TreapBatch, BatchOnEmptyTreeBuildsCanonicalShape) {
  alloc::Arena a;
  std::vector<T::BatchOp> ops{ins(1, 10), era(2), ins(3, 30), asg(4, 40),
                              era(5), ins(6, 60)};
  std::vector<T::BatchOutcome> out(ops.size());
  T batch = test::apply(
      a, [&](auto& b) { return T{}.apply_sorted_batch(b, ops, out); });
  T seq = insert_all(a, T{}, {1, 3, 6});
  seq = test::apply(a, [&](auto& b) { return seq.insert(b, 4, 40); });
  EXPECT_EQ(shape_of(batch), shape_of(seq));
  EXPECT_EQ(out[1], T::BatchOutcome::kNoop);
  EXPECT_EQ(out[3], T::BatchOutcome::kInserted);
  EXPECT_TRUE(batch.check_invariants());
}

// The canonical-form property test the batch path is held to, via the
// shared oracle harness: contents and outcomes must match sequential
// application — and, the treap being canonical, so must the exact shape
// (the `extra` hook). Uniform and clustered key patterns both run; the
// clustered one is the hot-range regime the shared spine exists for.
TEST(TreapBatch, RandomBatchesMatchSequentialApplication) {
  const auto shapes_equal = [](const T& batch, const T& seq) {
    ASSERT_EQ(shape_of(batch), shape_of(seq));
  };
  test::batch_oracle_random<T>(1234, 40, test::BatchKeyPattern::kUniform,
                               shapes_equal);
  test::batch_oracle_random<T>(1235, 20, test::BatchKeyPattern::kClustered,
                               shapes_equal);
}

// Bounded scan rides for_each_range; the shared oracle also re-checks the
// range walk and count_range against a std::set reference.
TEST(Treap, ScanMatchesOracle) { test::range_oracle_random<T>(1101); }

// Sorted read batch: one descent-sharing sweep must answer exactly like
// per-key find(), with consistent savings accounting.
TEST(Treap, SortedReadBatchMatchesPerKeyFind) {
  test::read_batch_oracle_random<T>(1111, 30, test::BatchKeyPattern::kUniform);
  test::read_batch_oracle_random<T>(1112, 20,
                                    test::BatchKeyPattern::kClustered);
}

}  // namespace
}  // namespace pathcopy
