#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/hamt.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

/// splitmix64 — a real mixing hash, unlike std::hash<int64> (identity on
/// most standard libraries), so trie shapes are representative.
struct MixHash {
  std::uint64_t operator()(std::int64_t k) const noexcept {
    std::uint64_t x = static_cast<std::uint64_t>(k) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

/// Degenerate hash: at most 4 distinct values, forcing deep single-child
/// chains and collision nodes at max depth.
struct ClashHash {
  std::uint64_t operator()(std::int64_t k) const noexcept {
    return static_cast<std::uint64_t>(k) & 3;
  }
};

using H = persist::Hamt<std::int64_t, std::int64_t, 6, MixHash>;
using HClash = persist::Hamt<std::int64_t, std::int64_t, 6, ClashHash>;

template <class Hamt, class Alloc>
Hamt insert_all(Alloc& al, Hamt t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(al, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

std::vector<std::int64_t> iota_keys(std::int64_t n) {
  std::vector<std::int64_t> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) keys.push_back(i);
  return keys;
}

TEST(Hamt, EmptyBasics) {
  H t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.find(1), nullptr);
}

TEST(Hamt, SingleLeafRoot) {
  alloc::Arena a;
  H t = insert_all(a, H{}, {42});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(*t.find(42), 420);
}

TEST(Hamt, InsertFindManyMixedKeys) {
  alloc::Arena a;
  H t = insert_all(a, H{}, iota_keys(2048));
  EXPECT_EQ(t.size(), 2048u);
  EXPECT_TRUE(t.check_invariants());
  for (std::int64_t k = 0; k < 2048; ++k) {
    ASSERT_NE(t.find(k), nullptr) << k;
    ASSERT_EQ(*t.find(k), k * 10);
  }
  EXPECT_EQ(t.find(5000), nullptr);
  EXPECT_EQ(t.find(-1), nullptr);
}

TEST(Hamt, DepthIsLogarithmicInWidth) {
  alloc::Arena a;
  H t = insert_all(a, H{}, iota_keys(4096));
  // 64-way branching: expected depth ~ log64(4096) = 2, plus slack for
  // sparse prefixes. Must be far below a binary tree's ~12.
  EXPECT_LE(t.height(), 6u);
}

TEST(Hamt, DuplicateInsertReturnsSameRoot) {
  alloc::Arena a;
  H t = insert_all(a, H{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.insert(b, 2, 0).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(Hamt, EraseAbsentReturnsSameRoot) {
  alloc::Arena a;
  H t = insert_all(a, H{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.erase(b, 9).root_ptr(), t.root_ptr());
  b.rollback();
}

TEST(Hamt, InsertOrAssignReplacesValue) {
  alloc::Arena a;
  H t = insert_all(a, H{}, {1, 2, 3});
  H t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 42); });
  EXPECT_EQ(*t2.find(2), 42);
  EXPECT_EQ(*t.find(2), 20);  // old version untouched
  EXPECT_TRUE(t2.check_invariants());
}

TEST(Hamt, EraseEverythingInRandomOrder) {
  alloc::Arena a;
  const auto keys = iota_keys(512);
  H t = insert_all(a, H{}, keys);
  util::Xoshiro256 rng(7);
  std::vector<std::int64_t> order = keys;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (const auto k : order) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants()) << "after erasing " << k;
    ASSERT_EQ(t.find(k), nullptr);
  }
  EXPECT_TRUE(t.empty());
}

TEST(Hamt, EraseCollapsesToCanonicalForm) {
  alloc::Arena a;
  // Insert a cluster of keys, erase all but one: the trie must collapse
  // back to a single leaf (no single-child branch chains left behind).
  const auto keys = iota_keys(64);
  H t = insert_all(a, H{}, keys);
  for (std::int64_t k = 1; k < 64; ++k) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.height(), 1u);  // collapsed to a bare leaf
}

// Collision tests run on MallocAlloc: collision leaves own heap storage
// (their entry vector), which the arena's no-op frees would leak — the
// retire pipeline must run their destructors.
TEST(Hamt, CollisionNodesStoreAndRetrieve) {
  alloc::MallocAlloc a;
  HClash t;
  // 40 keys, <=4 distinct hashes: at least one collision bucket of >=10.
  t = insert_all(a, t, iota_keys(40));
  EXPECT_EQ(t.size(), 40u);
  EXPECT_TRUE(t.check_invariants());
  for (std::int64_t k = 0; k < 40; ++k) {
    ASSERT_NE(t.find(k), nullptr);
    ASSERT_EQ(*t.find(k), k * 10);
  }
  HClash::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Hamt, CollisionInsertOrAssign) {
  alloc::MallocAlloc a;
  HClash t = insert_all(a, HClash{}, iota_keys(12));
  t = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 8, -1); });
  EXPECT_EQ(*t.find(8), -1);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_TRUE(t.check_invariants());
  HClash::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Hamt, CollisionEraseDownToLeaf) {
  alloc::MallocAlloc a;
  HClash t = insert_all(a, HClash{}, {0, 4, 8, 12});  // all hash to 0
  EXPECT_EQ(t.size(), 4u);
  for (const std::int64_t k : {0, 4, 8}) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants());
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NE(t.find(12), nullptr);
  t = test::apply(a, [&](auto& b) { return t.erase(b, 12); });
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Hamt, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  H v1 = insert_all(a, H{}, iota_keys(100));
  core::Builder<alloc::Arena> b(a);
  H v2 = v1.erase(b, 50);
  b.seal();
  (void)b.commit();
  EXPECT_TRUE(v1.contains(50));
  EXPECT_FALSE(v2.contains(50));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(Hamt, SharingAfterInsertIsPathOnly) {
  alloc::Arena a;
  H v1 = insert_all(a, H{}, iota_keys(4096));
  core::Builder<alloc::Arena> b(a);
  H v2 = v1.insert(b, 999999, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = H::shared_nodes(v1, v2);
  // Entry count reachable through shared nodes misses only the copied
  // root-to-slot path's fan-in — a handful of entries out of 4096.
  EXPECT_GE(shared, v1.size() - 200);
}

TEST(Hamt, ItemsContainsExactlyInsertedPairs) {
  alloc::Arena a;
  util::Xoshiro256 rng(17);
  std::map<std::int64_t, std::int64_t> oracle;
  H t;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t k = rng.range(-500, 500);
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
    oracle.emplace(k, k);
  }
  auto items = t.items();
  std::sort(items.begin(), items.end());
  ASSERT_EQ(items.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ASSERT_EQ(items[i].second, v);
    ++i;
  }
}

TEST(Hamt, RandomOpsAgainstOracle) {
  alloc::Arena a;
  H t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t k = rng.range(-80, 80);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 250 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  EXPECT_TRUE(t.check_invariants());
}

TEST(Hamt, ClashHashRandomOpsAgainstOracle) {
  alloc::MallocAlloc a;
  HClash t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t k = rng.range(0, 64);
    if (rng.chance(1, 2)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 100 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  HClash::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Hamt, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  H t;
  for (std::int64_t k = 0; k < 200; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_GT(a.stats().live_blocks(), 0u);
  H::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Hamt, DestroyFreesCollisionNodes) {
  alloc::MallocAlloc a;
  HClash t;
  for (std::int64_t k = 0; k < 32; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  HClash::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// The same battery at other branching factors: a template-parameter sweep
// (not copy-paste — one function, three instantiations).
template <unsigned Bits>
void run_width_battery() {
  using HW = persist::Hamt<std::int64_t, std::int64_t, Bits, MixHash>;
  alloc::Arena a;
  HW t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(101 + Bits);
  for (int i = 0; i < 1500; ++i) {
    const std::int64_t k = rng.range(-200, 200);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 2); });
      oracle.emplace(k, k * 2);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 200 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  ASSERT_TRUE(t.check_invariants());
  for (const auto& [k, v] : oracle) {
    ASSERT_NE(t.find(k), nullptr);
    ASSERT_EQ(*t.find(k), v);
  }
}

TEST(HamtWidths, Bits2) { run_width_battery<2>(); }
TEST(HamtWidths, Bits4) { run_width_battery<4>(); }
TEST(HamtWidths, Bits5) { run_width_battery<5>(); }

}  // namespace
}  // namespace pathcopy
