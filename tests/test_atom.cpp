#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/universal.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_roots.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/watermark.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;

// The Atom API is identical across reclaimers; run the semantic tests
// against every freeing policy.
template <class Smr>
class AtomTyped : public ::testing::Test {};

using FreeingReclaimers =
    ::testing::Types<reclaim::EpochReclaimer, reclaim::WatermarkReclaimer,
                     reclaim::HazardRootReclaimer>;
TYPED_TEST_SUITE(AtomTyped, FreeingReclaimers);

TYPED_TEST(AtomTyped, InsertFindErase) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);

    EXPECT_EQ(atom.update(ctx, [](T t, auto& b) { return t.insert(b, 1, 10); }),
              core::UpdateResult::kInstalled);
    EXPECT_EQ(atom.update(ctx, [](T t, auto& b) { return t.insert(b, 2, 20); }),
              core::UpdateResult::kInstalled);

    const auto v = atom.read(ctx, [](T t) {
      return t.contains(1) && t.contains(2) && t.size() == 2;
    });
    EXPECT_TRUE(v);

    EXPECT_EQ(atom.update(ctx, [](T t, auto& b) { return t.erase(b, 1); }),
              core::UpdateResult::kInstalled);
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 1u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);  // teardown frees everything
}

TYPED_TEST(AtomTyped, NoChangeSkipsCas) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);

    atom.update(ctx, [](T t, auto& b) { return t.insert(b, 5, 50); });
    const auto v1 = atom.version();
    EXPECT_EQ(atom.update(ctx, [](T t, auto& b) { return t.insert(b, 5, 99); }),
              core::UpdateResult::kNoChange);
    EXPECT_EQ(atom.update(ctx, [](T t, auto& b) { return t.erase(b, 7); }),
              core::UpdateResult::kNoChange);
    EXPECT_EQ(atom.version(), v1);  // no version consumed by no-ops
    EXPECT_EQ(ctx.stats.noop_updates, 2u);
    EXPECT_EQ(atom.read(ctx, [](T t) { return *t.find(5); }), 50);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomTyped, VersionAdvancesPerInstall) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    EXPECT_EQ(atom.version(), 1u);
    for (std::int64_t i = 0; i < 10; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, i); });
    }
    EXPECT_EQ(atom.version(), 11u);
    EXPECT_EQ(ctx.stats.updates, 10u);
    EXPECT_EQ(ctx.stats.attempts, 10u);  // uncontended: one attempt each
    EXPECT_EQ(ctx.stats.cas_failures, 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomTyped, SteadyStateMemoryIsBounded) {
  // Insert/erase churn with periodic reclamation must not accumulate
  // superseded nodes without bound.
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    for (std::int64_t i = 0; i < 2000; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i % 64, i); });
      atom.update(ctx, [i](T t, auto& b) { return t.erase(b, i % 64); });
    }
    smr.drain_all();
    // Tree is empty; at most transiently-pending garbage was drained.
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 0u);
    // Exactly one block may outlive the drain: the current empty-root
    // sentinel minted by the last erase-to-empty. The 1999 superseded
    // sentinels went through the reclaimers like any other root, so
    // churn did not accumulate them — that is the boundedness claim.
    EXPECT_LE(a.stats().live_blocks(), 1u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);  // ~Atom frees the live sentinel
}

TYPED_TEST(AtomTyped, BulkLoadInOneUpdate) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t i = 0; i < 1000; ++i) items.emplace_back(i, i);
    atom.update(ctx, [&](T, auto& b) {
      return T::from_sorted(b, items.begin(), items.end());
    });
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 1000u);
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(AtomLeaky, WorksWithArena) {
  alloc::Arena arena;
  reclaim::LeakyReclaimer smr;
  {
    core::Atom<T, reclaim::LeakyReclaimer, alloc::Arena> atom(
        smr, *arena.retire_backend());
    core::Atom<T, reclaim::LeakyReclaimer, alloc::Arena>::Ctx ctx(smr, arena);
    for (std::int64_t i = 0; i < 500; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, i); });
    }
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }), 500u);
    EXPECT_GT(smr.leaked_nodes(), 0u);  // superseded path nodes leak by design
  }
  arena.reset();  // wholesale reclamation
}

TEST(AtomWatermark, SnapshotReadsOldVersionWhileWritersAdvance) {
  alloc::MallocAlloc a;
  {
    reclaim::WatermarkReclaimer smr;
    core::Atom<T, reclaim::WatermarkReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    core::Atom<T, reclaim::WatermarkReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);

    for (std::int64_t i = 0; i < 100; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, i); });
    }
    auto snap = atom.snapshot();
    const T frozen = T::from_root(
        core::Atom<T, reclaim::WatermarkReclaimer,
                   alloc::MallocAlloc>::structural_root(snap.root()));
    EXPECT_EQ(frozen.size(), 100u);

    // Writers keep going; the snapshot must stay intact and readable.
    for (std::int64_t i = 100; i < 300; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, i); });
      atom.update(ctx, [i](T t, auto& b) { return t.erase(b, i - 100); });
    }
    smr.drain_all();
    EXPECT_EQ(frozen.size(), 100u);
    EXPECT_TRUE(frozen.check_invariants());
    for (std::int64_t i = 0; i < 100; ++i) EXPECT_TRUE(frozen.contains(i));
    EXPECT_GT(smr.pending_nodes(), 0u);  // snapshot blocked some reclamation

    snap.release();
    smr.drain_all();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- unified universal-construction surface (core/universal.hpp) -----

// The plain Atom models the same concept the store layer drives the
// combining backend through.
static_assert(core::UniversalConstruction<
              core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>>);

TYPED_TEST(AtomTyped, ReifiedInsertEraseMatchSetOracle) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    const unsigned slot = atom.register_slot();  // vocabulary no-op
    std::set<std::int64_t> oracle;
    util::Xoshiro256 rng(3);
    for (int i = 0; i < 1500; ++i) {
      const std::int64_t k = rng.range(-40, 40);
      if (rng.chance(1, 2)) {
        ASSERT_EQ(atom.insert(ctx, slot, k, k), oracle.insert(k).second);
      } else {
        ASSERT_EQ(atom.erase(ctx, slot, k), oracle.erase(k) > 0);
      }
    }
    ASSERT_EQ(atom.size(ctx), oracle.size());
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomTyped, ExecuteBatchDegradesToPerOpLoop) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    using Atom = core::Atom<T, TypeParam, alloc::MallocAlloc>;
    Atom atom(smr, *a.retire_backend());
    typename Atom::Ctx ctx(smr, a);
    using Req = typename Atom::BatchRequest;
    using K = typename Atom::OpKind;
    // Same-key chain semantics fall out of per-op order for free.
    const std::vector<Req> reqs{
        {K::kInsert, 1, 10},          {K::kInsert, 7, 71},
        {K::kErase, 7, std::nullopt}, {K::kInsert, 7, 72},
        {K::kInsert, 7, 73},          {K::kErase, 9, std::nullopt},
    };
    const std::vector<bool> expected{true, true, true, true, false, false};
    bool results[8] = {};
    atom.execute_batch(ctx, reqs, std::span<bool>(results, reqs.size()));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(results[i], expected[i]) << "op " << i;
    }
    EXPECT_TRUE(atom.read(ctx, [](T t) {
      return t.size() == 2 && *t.find(7) == 72 && t.check_invariants();
    }));
    // One CAS per landing op, no batched installs: the measured baseline.
    EXPECT_EQ(ctx.stats.updates, 4u);
    EXPECT_EQ(ctx.stats.noop_updates, 2u);
    EXPECT_EQ(ctx.stats.batched_installs, 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomTyped, SeedSortedBulkLoadsInOneInstall) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < 500; ++k) items.emplace_back(k, k * 2);
    atom.seed_sorted(ctx, items.begin(), items.end());
    EXPECT_EQ(atom.version(), 2u);  // exactly one installed version
    EXPECT_EQ(atom.size(ctx), 500u);
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(AtomStats, FailureRatioComputation) {
  core::OpStats s;
  s.updates = 10;
  s.cas_failures = 5;
  EXPECT_DOUBLE_EQ(s.failure_ratio(), 0.5);
  core::OpStats zero;
  EXPECT_DOUBLE_EQ(zero.failure_ratio(), 0.0);
  core::OpStats sum;
  sum += s;
  sum += s;
  EXPECT_EQ(sum.updates, 20u);
  EXPECT_EQ(sum.cas_failures, 10u);
}

}  // namespace
}  // namespace pathcopy
