// The batched read path at the UC and store layers.
//
// What must hold:
//   * oracle equivalence — multi_get answers every probe key (present and
//     absent) exactly like per-key reads against the same contents, on
//     both UC backends (Atom, CombiningAtom) and across structures,
//     including the external BST's per-key fallback;
//   * read-only discipline — a multi_get batch performs ZERO allocations,
//     ZERO installs, and ZERO version bumps (white-box via AllocStats and
//     the UC's version counter): a pinned root is a free snapshot;
//   * Session::multi_get — unsorted, duplicate-laden client key sets are
//     split per shard, probed against one snapshot per shard, and
//     scattered back aligned with the input;
//   * single-snapshot reads under churn — a reader's per-shard probe must
//     never blend two versions: with a writer atomically flip-flopping an
//     invariant-carrying key pair, every multi_get observes a consistent
//     pair (the TSan target, executor attached so probes ride read tasks).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/router.hpp"
#include "store/sharded_map.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using MA = alloc::MallocAlloc;
using Smr = reclaim::EpochReclaimer;
using Treap = persist::Treap<std::int64_t, std::int64_t>;
using Avl = persist::AvlTree<std::int64_t, std::int64_t>;
using Btree = persist::BTree<std::int64_t, std::int64_t, 8>;
using Ebst = persist::ExternalBst<std::int64_t, std::int64_t>;

// The two UC backends write differently (update lambda vs announced
// slot op); hide that behind one insert helper so the oracle body is
// backend-agnostic.
template <class Uc>
unsigned maybe_slot(Uc& uc) {
  if constexpr (requires { uc.register_slot(); }) {
    return uc.register_slot();
  } else {
    return 0;
  }
}

template <class Uc>
void uc_insert(Uc& uc, typename Uc::Ctx& ctx, unsigned slot, std::int64_t k,
               std::int64_t v) {
  if constexpr (requires { uc.insert(ctx, slot, k, v); }) {
    uc.insert(ctx, slot, k, v);
  } else {
    uc.update(ctx, [k, v](auto t, auto& b) { return t.insert(b, k, v); });
  }
}

/// The UC-level oracle: populate, then batch-probe mixed present/absent
/// key sets and hold every answer to the per-key read while asserting
/// the read-only discipline (no allocation, no install, no version bump).
template <class Uc>
void multiget_uc_oracle(Uc& uc, typename Uc::Ctx& ctx, MA& a,
                        std::uint64_t seed, test::BatchKeyPattern pattern) {
  util::Xoshiro256 rng(seed);
  const unsigned slot = maybe_slot(uc);
  std::map<std::int64_t, std::int64_t> oracle;
  for (int i = 0; i < 400; ++i) {
    const std::int64_t k = rng.range(0, 1200);
    uc_insert(uc, ctx, slot, k, k * 9);
    oracle.emplace(k, k * 9);  // insert does not overwrite
  }

  const std::int64_t hot = rng.range(0, 1100);
  const auto gen_key = [&]() -> std::int64_t {
    if (pattern == test::BatchKeyPattern::kClustered) {
      return hot + rng.range(0, 80);
    }
    return rng.range(-50, 1400);  // absent keys on both flanks
  };

  const std::uint64_t reads_before = ctx.stats.reads;
  std::uint64_t probed = 0;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    std::set<std::int64_t> used;
    const int batch = 1 + static_cast<int>(rng.range(0, 64));
    for (int i = 0; i < batch; ++i) used.insert(gen_key());
    const std::vector<std::int64_t> keys(used.begin(), used.end());
    std::vector<typename Uc::ReadOutcome> out(keys.size());

    const auto version_before = uc.version();
    const std::uint64_t allocs_before = a.stats().allocs.load();
    const std::uint64_t updates_before = ctx.stats.updates;
    const persist::ReadProbeStats st = uc.multi_get(
        ctx, std::span<const std::int64_t>(keys),
        std::span<typename Uc::ReadOutcome>(out));
    // Read-only: the pinned root is the whole story.
    ASSERT_EQ(uc.version(), version_before) << "round " << round;
    ASSERT_EQ(a.stats().allocs.load(), allocs_before)
        << "multi_get allocated, round " << round;
    ASSERT_EQ(ctx.stats.updates, updates_before)
        << "multi_get installed, round " << round;
    ASSERT_GE(st.per_key_nodes, st.nodes_visited);

    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto it = oracle.find(keys[i]);
      ASSERT_EQ(out[i].present(), it != oracle.end())
          << "round " << round << " key " << keys[i];
      if (it != oracle.end()) {
        ASSERT_EQ(*out[i].value, it->second)
            << "round " << round << " key " << keys[i];
      }
    }
    probed += keys.size();
  }
  // Counter contract: every probe key counted as a read, every sweep as
  // one read batch.
  EXPECT_EQ(ctx.stats.reads - reads_before, probed);
  EXPECT_EQ(ctx.stats.read_batches, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(ctx.stats.batched_reads, probed);
}

template <class DS>
void run_atom_oracle(std::uint64_t seed, test::BatchKeyPattern pattern) {
  MA a;
  {
    Smr smr;
    core::Atom<DS, Smr, MA> uc(smr, *a.retire_backend());
    typename core::Atom<DS, Smr, MA>::Ctx ctx(smr, a);
    multiget_uc_oracle(uc, ctx, a, seed, pattern);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

template <class DS>
void run_combining_oracle(std::uint64_t seed, test::BatchKeyPattern pattern) {
  MA a;
  {
    Smr smr;
    core::CombiningAtom<DS, Smr, MA> uc(smr, a);
    typename core::CombiningAtom<DS, Smr, MA>::Ctx ctx(smr, a);
    multiget_uc_oracle(uc, ctx, a, seed, pattern);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(MultiGetAtom, TreapOracle) {
  run_atom_oracle<Treap>(901, test::BatchKeyPattern::kUniform);
  run_atom_oracle<Treap>(902, test::BatchKeyPattern::kClustered);
}
TEST(MultiGetAtom, AvlOracle) {
  run_atom_oracle<Avl>(903, test::BatchKeyPattern::kUniform);
  run_atom_oracle<Avl>(904, test::BatchKeyPattern::kClustered);
}
TEST(MultiGetAtom, BtreeOracle) {
  run_atom_oracle<Btree>(905, test::BatchKeyPattern::kUniform);
  run_atom_oracle<Btree>(906, test::BatchKeyPattern::kClustered);
}
// External BST has no get_sorted_batch: the concept-gated per-key
// fallback must hold the same contract (still one pin, still no writes).
TEST(MultiGetAtom, ExternalBstFallbackOracle) {
  run_atom_oracle<Ebst>(907, test::BatchKeyPattern::kUniform);
}

TEST(MultiGetCombining, TreapOracle) {
  run_combining_oracle<Treap>(911, test::BatchKeyPattern::kUniform);
  run_combining_oracle<Treap>(912, test::BatchKeyPattern::kClustered);
}
TEST(MultiGetCombining, AvlOracle) {
  run_combining_oracle<Avl>(913, test::BatchKeyPattern::kUniform);
}
TEST(MultiGetCombining, BtreeOracle) {
  run_combining_oracle<Btree>(914, test::BatchKeyPattern::kClustered);
}
TEST(MultiGetCombining, ExternalBstFallbackOracle) {
  run_combining_oracle<Ebst>(915, test::BatchKeyPattern::kUniform);
}

// ----- store layer -----

using RangeR = store::RangeRouter<std::int64_t>;
template <class Uc>
using Map = store::ShardedMap<Uc, RangeR>;
using PlainUc = core::Atom<Treap, Smr, MA>;
using CombUc = core::CombiningAtom<Treap, Smr, MA>;

template <class Uc>
auto shared_alloc_factory(MA& a) {
  return [&a]() -> MA& { return a; };
}

/// Session::multi_get vs per-key find: unsorted client keys WITH
/// duplicates and absent keys, split across 4 shards, sync path.
template <class Uc>
void session_multiget_oracle(std::uint64_t seed) {
  MA a;
  {
    Map<Uc> map(4, a, RangeR::uniform(0, 1024, 4));
    typename Map<Uc>::Session s(map, a);
    util::Xoshiro256 rng(seed);
    std::map<std::int64_t, std::int64_t> oracle;
    for (int i = 0; i < 500; ++i) {
      const std::int64_t k = rng.range(0, 1024);
      if (s.insert(k, k * 5)) oracle.emplace(k, k * 5);
    }
    for (int round = 0; round < 20; ++round) {
      std::vector<std::int64_t> keys;
      const int batch = 1 + static_cast<int>(rng.range(0, 48));
      for (int i = 0; i < batch; ++i) keys.push_back(rng.range(0, 1100));
      // Force duplicates: repeat a prefix, unsorted order preserved.
      for (int i = 0; i < batch / 3; ++i) keys.push_back(keys[i]);
      std::vector<typename Map<Uc>::ReadOutcome> out(keys.size());
      s.multi_get(std::span<const std::int64_t>(keys),
                  std::span<typename Map<Uc>::ReadOutcome>(out));
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto it = oracle.find(keys[i]);
        ASSERT_EQ(out[i].present(), it != oracle.end())
            << "round " << round << " slot " << i << " key " << keys[i];
        if (it != oracle.end()) {
          ASSERT_EQ(*out[i].value, it->second);
        }
      }
    }
    // Bounded global scan: a true prefix of the ordered range.
    std::vector<std::pair<std::int64_t, std::int64_t>> want(oracle.begin(),
                                                            oracle.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    const std::size_t n = s.scan(0, 2048, 17, got);
    ASSERT_EQ(n, std::min<std::size_t>(17, want.size()));
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(got[i], want[i]);
    got.clear();
    ASSERT_EQ(s.scan(0, 2048, want.size() + 10, got), want.size());
    ASSERT_EQ(got, want);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(MultiGetSession, SplitsScattersAndScans) {
  session_multiget_oracle<PlainUc>(921);
  session_multiget_oracle<CombUc>(922);
}

/// The single-snapshot property under churn, executor attached so
/// probes ride the shard lanes as read tasks (the TSan target).
///
/// A writer flip-flops two invariant-carrying key pairs on one shard:
/// each batch atomically erases the live pair and installs the other
/// with values summing to kSum (key-unique batch → one install). Any
/// multi_get that blended two versions would see a half-present pair or
/// a sum from two rounds.
template <class Uc>
void single_snapshot_under_churn() {
  constexpr std::int64_t kA1 = 10, kA2 = 20, kB1 = 30, kB2 = 40;
  constexpr std::int64_t kSum = 100000;
  MA a;
  {
    Map<Uc> map(4, a, RangeR::uniform(0, 1024, 4));
    store::ShardExecutor<Uc> exec(map, shared_alloc_factory<Uc>(a));
    using Req = typename Uc::BatchRequest;
    using K = typename Uc::OpKind;
    {
      typename Map<Uc>::Session s(map, a);
      const Req seed[] = {Req{K::kInsert, kA1, 0},
                          Req{K::kInsert, kA2, kSum}};
      bool r[2];
      s.execute_batch(std::span<const Req>(seed, 2), r);
    }
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      typename Map<Uc>::Session s(map, a);
      bool a_live = true;
      std::int64_t x = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        x = (x + 7919) % kSum;
        const std::int64_t dead1 = a_live ? kA1 : kB1;
        const std::int64_t dead2 = a_live ? kA2 : kB2;
        const std::int64_t live1 = a_live ? kB1 : kA1;
        const std::int64_t live2 = a_live ? kB2 : kA2;
        const Req flip[] = {Req{K::kErase, dead1, std::nullopt},
                            Req{K::kErase, dead2, std::nullopt},
                            Req{K::kInsert, live1, x},
                            Req{K::kInsert, live2, kSum - x}};
        bool r[4];
        s.execute_batch(std::span<const Req>(flip, 4), r);
        a_live = !a_live;
      }
    });
    std::vector<std::thread> readers;
    std::atomic<int> violations{0};
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&] {
        typename Map<Uc>::Session s(map, a);
        const std::int64_t keys[] = {kA1, kA2, kB1, kB2};
        for (int i = 0; i < 1500; ++i) {
          typename Map<Uc>::ReadOutcome out[4];
          s.multi_get(std::span<const std::int64_t>(keys, 4),
                      std::span<typename Map<Uc>::ReadOutcome>(out, 4));
          const bool a_pair = out[0].present();
          const bool b_pair = out[2].present();
          // Pairs flip atomically: never half-present, never both or
          // neither live, and the live pair's values are one round's.
          if (out[1].present() != a_pair || out[3].present() != b_pair ||
              a_pair == b_pair) {
            violations.fetch_add(1);
            continue;
          }
          const std::int64_t sum = a_pair ? *out[0].value + *out[1].value
                                          : *out[2].value + *out[3].value;
          if (sum != kSum) violations.fetch_add(1);
        }
      });
    }
    for (auto& r : readers) r.join();
    stop.store(true);
    writer.join();
    EXPECT_EQ(violations.load(), 0) << "a multi_get blended two versions";
    exec.stop();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(MultiGetConcurrent, SingleSnapshotUnderChurnAtom) {
  single_snapshot_under_churn<PlainUc>();
}
TEST(MultiGetConcurrent, SingleSnapshotUnderChurnCombining) {
  single_snapshot_under_churn<CombUc>();
}

}  // namespace
}  // namespace pathcopy
