#include <gtest/gtest.h>

#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/plist.hpp"
#include "test_support.hpp"

namespace pathcopy {
namespace {

using L = persist::PList<std::int64_t>;

template <class Alloc>
L make_list(Alloc& a, std::initializer_list<std::int64_t> values) {
  // push_front reverses, so feed back-to-front.
  L l;
  std::vector<std::int64_t> v(values);
  for (auto it = v.rbegin(); it != v.rend(); ++it) {
    const auto x = *it;
    l = test::apply(a, [&](auto& b) { return l.push_front(b, x); });
  }
  return l;
}

TEST(PList, EmptyBasics) {
  L l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_TRUE(l.check_invariants());
}

TEST(PList, PushFrontOrder) {
  alloc::Arena a;
  L l = make_list(a, {1, 2, 3});
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(l.front(), 1);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_TRUE(l.check_invariants());
}

TEST(PList, AtIndexing) {
  alloc::Arena a;
  L l = make_list(a, {10, 20, 30});
  EXPECT_EQ(l.at(0), 10);
  EXPECT_EQ(l.at(1), 20);
  EXPECT_EQ(l.at(2), 30);
}

TEST(PList, PopFront) {
  alloc::Arena a;
  L l = make_list(a, {1, 2});
  l = test::apply(a, [&](auto& b) { return l.pop_front(b); });
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{2}));
  l = test::apply(a, [&](auto& b) { return l.pop_front(b); });
  EXPECT_TRUE(l.empty());
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(l.pop_front(b).root_ptr(), nullptr);  // no-op on empty
  b.rollback();
}

TEST(PList, SetCopiesPrefixOnly) {
  alloc::Arena a;
  L v1 = make_list(a, {1, 2, 3, 4, 5});
  core::Builder<alloc::Arena> b(a);
  L v2 = v1.set(b, 1, 99);
  b.seal();
  (void)b.commit();
  EXPECT_EQ(v2.items(), (std::vector<std::int64_t>{1, 99, 3, 4, 5}));
  EXPECT_EQ(v1.items(), (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  // Suffix after index 1 is shared.
  EXPECT_EQ(L::shared_nodes(v1, v2), 3u);
}

TEST(PList, InsertAt) {
  alloc::Arena a;
  L l = make_list(a, {1, 3});
  l = test::apply(a, [&](auto& b) { return l.insert_at(b, 1, 2); });
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{1, 2, 3}));
  l = test::apply(a, [&](auto& b) { return l.insert_at(b, 3, 4); });  // append
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{1, 2, 3, 4}));
  l = test::apply(a, [&](auto& b) { return l.insert_at(b, 0, 0); });  // prepend
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(l.check_invariants());
}

TEST(PList, EraseAt) {
  alloc::Arena a;
  L l = make_list(a, {1, 2, 3, 4});
  l = test::apply(a, [&](auto& b) { return l.erase_at(b, 1); });
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{1, 3, 4}));
  l = test::apply(a, [&](auto& b) { return l.erase_at(b, 0); });
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{3, 4}));
  l = test::apply(a, [&](auto& b) { return l.erase_at(b, 1); });
  EXPECT_EQ(l.items(), (std::vector<std::int64_t>{3}));
  EXPECT_TRUE(l.check_invariants());
}

TEST(PList, Concat) {
  alloc::Arena a;
  L x = make_list(a, {1, 2});
  L y = make_list(a, {3, 4});
  core::Builder<alloc::Arena> b(a);
  L z = L::concat(b, x, y);
  b.seal();
  (void)b.commit();
  EXPECT_EQ(z.items(), (std::vector<std::int64_t>{1, 2, 3, 4}));
  // rhs is shared wholesale; lhs was copied.
  EXPECT_EQ(L::shared_nodes(y, z), 2u);
  EXPECT_EQ(x.items(), (std::vector<std::int64_t>{1, 2}));
}

TEST(PList, PersistenceAcrossManyVersions) {
  alloc::Arena a;
  std::vector<L> versions;
  L l;
  for (std::int64_t i = 0; i < 20; ++i) {
    core::Builder<alloc::Arena> b(a);
    l = l.push_front(b, i);
    b.seal();
    (void)b.commit();
    versions.push_back(l);
  }
  for (std::size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i].size(), i + 1);
    EXPECT_EQ(versions[i].front(), static_cast<std::int64_t>(i));
  }
}

TEST(PList, PushFrontIsO1Allocation) {
  alloc::Arena a;
  L l = make_list(a, {1, 2, 3, 4, 5, 6, 7, 8});
  core::Builder<alloc::Arena> b(a);
  (void)l.push_front(b, 0);
  EXPECT_EQ(b.stats().created, 1u);
  b.rollback();
}

TEST(PList, SetAllocatesPrefixLength) {
  alloc::Arena a;
  L l = make_list(a, {1, 2, 3, 4, 5, 6, 7, 8});
  core::Builder<alloc::Arena> b(a);
  (void)l.set(b, 5, 0);
  EXPECT_EQ(b.stats().created, 6u);  // indices 0..5 copied
  b.rollback();
}

TEST(PList, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  L l;
  for (std::int64_t i = 0; i < 50; ++i) {
    l = test::apply(a, [&](auto& b) { return l.push_front(b, i); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 50u);
  L::destroy(l.head_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
