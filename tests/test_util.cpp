#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/align.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

TEST(Rng, SplitmixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(util::splitmix64(s1), util::splitmix64(s2));
  }
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 42;
  const auto a = util::splitmix64(s);
  const auto b = util::splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, Mix64IsPure) {
  EXPECT_EQ(util::mix64(123), util::mix64(123));
  EXPECT_NE(util::mix64(123), util::mix64(124));
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  util::Xoshiro256 a(7), b(7), c(8);
  bool all_equal_c = true;
  for (int i = 0; i < 64; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Rng, BelowStaysInRange) {
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  util::Xoshiro256 rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds) {
  util::Xoshiro256 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

TEST(Rng, ChanceIsApproximatelyFair) {
  util::Xoshiro256 rng(5);
  int heads = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(1, 2)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.5, 0.02);
}

TEST(Align, RoundUp) {
  EXPECT_EQ(util::round_up(0, 16), 0u);
  EXPECT_EQ(util::round_up(1, 16), 16u);
  EXPECT_EQ(util::round_up(16, 16), 16u);
  EXPECT_EQ(util::round_up(17, 16), 32u);
}

TEST(Align, PaddedIsCacheLineSized) {
  EXPECT_GE(sizeof(util::Padded<char>), util::kCacheLine);
  EXPECT_EQ(alignof(util::Padded<char>), util::kCacheLine);
}

TEST(Align, PaddedAccessors) {
  util::Padded<int> p;
  *p = 7;
  EXPECT_EQ(p.value, 7);
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace pathcopy
