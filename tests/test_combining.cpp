// CombiningAtom (lock-free, PSim-style) and FlatCombining (lock-based)
// semantics and accounting, single-threaded and under real contention.
//
// The strongest check here is exactly-once application: every announced
// operation must be absorbed by exactly one installed version, so the sum
// of combined_ops across threads equals the total operation count, and
// per-key "net effect" counters must reconcile with the final contents.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/combining.hpp"
#include "persist/avl.hpp"
#include "persist/btree.hpp"
#include "persist/external_bst.hpp"
#include "persist/rbt.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_roots.hpp"
#include "reclaim/watermark.hpp"
#include "seq/flat_combining.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using FC = seq::FlatCombining<seq::SeqTreap<std::int64_t, std::int64_t>>;

template <class Smr>
class CombiningTyped : public ::testing::Test {};

using Reclaimers =
    ::testing::Types<reclaim::EpochReclaimer, reclaim::WatermarkReclaimer,
                     reclaim::HazardRootReclaimer>;
TYPED_TEST_SUITE(CombiningTyped, Reclaimers);

TYPED_TEST(CombiningTyped, SingleThreadSemantics) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    const unsigned slot = atom.register_slot();

    EXPECT_TRUE(atom.insert(ctx, slot, 1, 10));
    EXPECT_TRUE(atom.insert(ctx, slot, 2, 20));
    EXPECT_FALSE(atom.insert(ctx, slot, 1, 99));  // duplicate
    EXPECT_TRUE(atom.read(ctx, [](T t) {
      return t.contains(1) && t.contains(2) && *t.find(1) == 10;
    }));
    EXPECT_TRUE(atom.erase(ctx, slot, 1));
    EXPECT_FALSE(atom.erase(ctx, slot, 1));  // already gone
    EXPECT_FALSE(atom.erase(ctx, slot, 7));  // never present
    EXPECT_EQ(atom.size(ctx), 1u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, VersionAdvancesPerInstall) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    const unsigned slot = atom.register_slot();
    EXPECT_EQ(atom.version(), 1u);
    atom.insert(ctx, slot, 1, 1);
    EXPECT_EQ(atom.version(), 2u);
    // Unlike the plain Atom, a semantic no-op still installs a version —
    // the response must be published through the VersionRec.
    atom.insert(ctx, slot, 1, 1);
    EXPECT_EQ(atom.version(), 3u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, ResultsMatchOracle) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    const unsigned slot = atom.register_slot();
    std::set<std::int64_t> oracle;
    util::Xoshiro256 rng(7);
    for (int i = 0; i < 2000; ++i) {
      const std::int64_t k = rng.range(-40, 40);
      if (rng.chance(1, 2)) {
        ASSERT_EQ(atom.insert(ctx, slot, k, k), oracle.insert(k).second);
      } else {
        ASSERT_EQ(atom.erase(ctx, slot, k), oracle.erase(k) > 0);
      }
    }
    ASSERT_EQ(atom.size(ctx), oracle.size());
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, DisjointInsertsAllLandExactlyOnce) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1200;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> combined{0}, own_installs{0}, helped{0};
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx
            ctx(smr, a);
        const unsigned slot = atom.register_slot();
        for (std::int64_t i = 0; i < kPerThread; ++i) {
          const std::int64_t key = w * kPerThread + i;
          ASSERT_TRUE(atom.insert(ctx, slot, key, key));
        }
        // Every op completes exactly one way.
        ASSERT_EQ(ctx.stats.updates + ctx.stats.helped_completions,
                  static_cast<std::uint64_t>(kPerThread));
        combined += ctx.stats.combined_ops;
        own_installs += ctx.stats.updates;
        helped += ctx.stats.helped_completions;
      });
    }
    for (auto& w : workers) w.join();
    // Exactly-once application: the batches of all installed versions
    // partition the full operation set.
    EXPECT_EQ(combined.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(own_installs.load() + helped.load(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);

    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    EXPECT_EQ(atom.size(ctx), static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, ContendedNetEffectReconciles) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx
            ctx(smr, a);
        const unsigned slot = atom.register_slot();
        util::Xoshiro256 rng(w + 11);
        for (int i = 0; i < 2500; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          if (rng.chance(1, 2)) {
            if (atom.insert(ctx, slot, k, k)) net[k].fetch_add(1);
          } else {
            if (atom.erase(ctx, slot, k)) net[k].fetch_sub(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      const bool present =
          atom.read(ctx, [k](T t) { return t.contains(k); });
      ASSERT_EQ(present, n == 1) << "key " << k;
    }
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- sorted-batch fast path -----

using EpochCA = core::CombiningAtom<T, reclaim::EpochReclaimer,
                                    alloc::MallocAlloc>;

// Same-key collisions: a chain of ops on one key inside one batch must
// respond exactly as if applied in order, with the later op deciding the
// final structural state (the "later slot wins" collapse). Checked
// deterministically through execute_batch in both modes.
TEST(CombiningBatch, SameKeyChainsCollapseCorrectly) {
  for (const bool batched : {false, true}) {
    alloc::MallocAlloc a;
    {
      reclaim::EpochReclaimer smr;
      EpochCA atom(smr, a);
      atom.set_batch_apply(batched);
      EpochCA::Ctx ctx(smr, a);
      using Req = EpochCA::BatchRequest;
      using K = EpochCA::OpKind;

      // Key 7 absent: insert v1 lands, erase removes, insert v2 lands,
      // insert v3 no-ops. Keys 1/2 pad the batch over the fast-path
      // threshold. Expected results follow per-op order semantics.
      const std::vector<Req> reqs{
          {K::kInsert, 1, 10},      {K::kInsert, 7, 71},
          {K::kErase, 7, std::nullopt}, {K::kInsert, 7, 72},
          {K::kInsert, 7, 73},      {K::kInsert, 2, 20},
      };
      std::vector<bool> expected{true, true, true, true, false, true};
      bool results[8] = {};
      atom.execute_batch(ctx, reqs, std::span<bool>(results, reqs.size()));
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(results[i], expected[i])
            << "batched=" << batched << " op " << i;
      }
      EXPECT_TRUE(atom.read(ctx, [](T t) {
        return t.size() == 3 && *t.find(7) == 72 && t.check_invariants();
      }));
      EXPECT_EQ(ctx.stats.batched_installs, batched ? 1u : 0u);

      // Chain ending in an erase: key 7 present, [erase, insert v9,
      // erase] leaves it absent; responses trace presence flips.
      const std::vector<Req> reqs2{
          {K::kErase, 7, std::nullopt}, {K::kInsert, 7, 90},
          {K::kErase, 7, std::nullopt}, {K::kErase, 3, std::nullopt},
      };
      std::vector<bool> expected2{true, true, true, false};
      atom.execute_batch(ctx, reqs2, std::span<bool>(results, reqs2.size()));
      for (std::size_t i = 0; i < reqs2.size(); ++i) {
        EXPECT_EQ(results[i], expected2[i])
            << "batched=" << batched << " op " << i;
      }
      EXPECT_TRUE(atom.read(ctx, [](T t) {
        return t.size() == 2 && !t.contains(7);
      }));
    }
    EXPECT_EQ(a.stats().live_blocks(), 0u);
  }
}

// Batch and per-op modes must be observationally identical: same
// responses, same final contents, and — the treap being canonical — the
// same tree for randomized request streams.
TEST(CombiningBatch, BatchMatchesPerOpOnRandomStreams) {
  util::Xoshiro256 rng(99);
  for (int round = 0; round < 20; ++round) {
    alloc::MallocAlloc a1, a2;
    {
      reclaim::EpochReclaimer smr1, smr2;
      EpochCA batched(smr1, a1), per_op(smr2, a2);
      batched.set_batch_apply(true);
      per_op.set_batch_apply(false);
      EpochCA::Ctx c1(smr1, a1), c2(smr2, a2);
      using Req = EpochCA::BatchRequest;
      using K = EpochCA::OpKind;

      const std::int64_t key_range = 1 + static_cast<std::int64_t>(rng.range(0, 60));
      for (int iter = 0; iter < 30; ++iter) {
        const int n = 1 + static_cast<int>(rng.range(0, 24));
        std::vector<Req> reqs;
        for (int i = 0; i < n; ++i) {
          const std::int64_t k = rng.range(0, key_range);
          if (rng.chance(1, 2)) {
            reqs.push_back(Req{K::kInsert, k, k + 1000 * iter + i});
          } else {
            reqs.push_back(Req{K::kErase, k, std::nullopt});
          }
        }
        bool buf1[32], buf2[32];
        batched.execute_batch(c1, reqs, std::span<bool>(buf1, n));
        per_op.execute_batch(c2, reqs, std::span<bool>(buf2, n));
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(buf1[i], buf2[i]) << "round " << round << " op " << i;
        }
      }
      const auto items1 = batched.read(c1, [](T t) { return t.items(); });
      const auto items2 = per_op.read(c2, [](T t) { return t.items(); });
      ASSERT_EQ(items1, items2) << "round " << round;
      ASSERT_TRUE(batched.read(c1, [](T t) { return t.check_invariants(); }));
      ASSERT_GT(c1.stats.batched_installs, 0u);
      ASSERT_EQ(c2.stats.batched_installs, 0u);
    }
    EXPECT_EQ(a1.stats().live_blocks(), 0u);
    EXPECT_EQ(a2.stats().live_blocks(), 0u);
  }
}

// Request streams longer than the slot count split into chunked installs
// (one CAS per MaxThreads requests), each with correct per-op results.
TEST(CombiningBatch, LongRequestStreamChunks) {
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    EpochCA atom(smr, a);  // MaxThreads = 32 -> 150 reqs = 5 chunks
    EpochCA::Ctx ctx(smr, a);
    using Req = EpochCA::BatchRequest;
    std::vector<Req> reqs;
    for (std::int64_t k = 0; k < 150; ++k) {
      reqs.push_back(Req{EpochCA::OpKind::kInsert, k, k * 3});
    }
    auto out = std::make_unique<bool[]>(reqs.size());
    atom.execute_batch(ctx, reqs, std::span<bool>(out.get(), reqs.size()));
    for (std::size_t i = 0; i < reqs.size(); ++i) EXPECT_TRUE(out[i]);
    EXPECT_EQ(ctx.stats.updates, 5u);
    EXPECT_EQ(atom.size(ctx), 150u);
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// Per-op result correctness under concurrent combiners with the batch
// path hot: a tiny key range plus the gather window forces same-key
// chains inside real gathered batches; net-effect must still reconcile
// with the final contents, and every op must complete exactly once.
TYPED_TEST(CombiningTyped, BatchedContendedNetEffectReconciles) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr int kKeys = 8;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    atom.set_gather_window(true);
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    std::atomic<std::uint64_t> total_ops{0}, completions{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx
            ctx(smr, a);
        const unsigned slot = atom.register_slot();
        util::Xoshiro256 rng(w + 77);
        for (int i = 0; i < 3000; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          if (rng.chance(1, 2)) {
            if (atom.insert(ctx, slot, k, k)) net[k].fetch_add(1);
          } else {
            if (atom.erase(ctx, slot, k)) net[k].fetch_sub(1);
          }
        }
        total_ops += 3000;
        completions += ctx.stats.updates + ctx.stats.helped_completions;
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(completions.load(), total_ops.load());
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      const bool present = atom.read(ctx, [k](T t) { return t.contains(k); });
      ASSERT_EQ(present, n == 1) << "key " << k;
    }
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- sorted-batch matrix: every map structure through the combiner -----
//
// The sorted-batch fast path is auto-detected per structure; since the
// E8 port, every map-shaped structure models SupportsSortedBatch, and the
// whole matrix must behave identically through the combining UC: batched
// and per-op modes agree on responses and contents for randomized
// request streams, and contended multi-thread runs reconcile per-key.

template <class DS>
class CombiningMatrix : public ::testing::Test {};

using MapStructures =
    ::testing::Types<persist::Treap<std::int64_t, std::int64_t>,
                     persist::AvlTree<std::int64_t, std::int64_t>,
                     persist::BTree<std::int64_t, std::int64_t, 8>,
                     persist::RbTree<std::int64_t, std::int64_t>,
                     persist::WbTree<std::int64_t, std::int64_t>,
                     persist::ExternalBst<std::int64_t, std::int64_t>>;
TYPED_TEST_SUITE(CombiningMatrix, MapStructures);

static_assert(core::SupportsSortedBatch<
              persist::Treap<std::int64_t, std::int64_t>,
              core::Builder<alloc::MallocAlloc>>);
static_assert(core::SupportsSortedBatch<
              persist::AvlTree<std::int64_t, std::int64_t>,
              core::Builder<alloc::MallocAlloc>>);
static_assert(core::SupportsSortedBatch<
              persist::BTree<std::int64_t, std::int64_t, 8>,
              core::Builder<alloc::MallocAlloc>>);
static_assert(core::SupportsSortedBatch<
              persist::RbTree<std::int64_t, std::int64_t>,
              core::Builder<alloc::MallocAlloc>>);
static_assert(core::SupportsSortedBatch<
              persist::WbTree<std::int64_t, std::int64_t>,
              core::Builder<alloc::MallocAlloc>>);
static_assert(core::SupportsSortedBatch<
              persist::ExternalBst<std::int64_t, std::int64_t>,
              core::Builder<alloc::MallocAlloc>>);

TYPED_TEST(CombiningMatrix, BatchMatchesPerOpOnRandomStreams) {
  using DS = TypeParam;
  using CA = core::CombiningAtom<DS, reclaim::EpochReclaimer,
                                 alloc::MallocAlloc>;
  util::Xoshiro256 rng(55);
  for (int round = 0; round < 6; ++round) {
    alloc::MallocAlloc a1, a2;
    {
      reclaim::EpochReclaimer smr1, smr2;
      CA batched(smr1, a1), per_op(smr2, a2);
      batched.set_batch_apply(true);
      per_op.set_batch_apply(false);
      typename CA::Ctx c1(smr1, a1), c2(smr2, a2);
      using Req = typename CA::BatchRequest;
      using K = typename CA::OpKind;

      const std::int64_t key_range =
          1 + static_cast<std::int64_t>(rng.range(0, 60));
      for (int iter = 0; iter < 30; ++iter) {
        const int n = 1 + static_cast<int>(rng.range(0, 24));
        std::vector<Req> reqs;
        for (int i = 0; i < n; ++i) {
          const std::int64_t k = rng.range(0, key_range);
          if (rng.chance(1, 2)) {
            reqs.push_back(Req{K::kInsert, k, k + 1000 * iter + i});
          } else {
            reqs.push_back(Req{K::kErase, k, std::nullopt});
          }
        }
        bool buf1[32], buf2[32];
        batched.execute_batch(c1, reqs, std::span<bool>(buf1, n));
        per_op.execute_batch(c2, reqs, std::span<bool>(buf2, n));
        for (int i = 0; i < n; ++i) {
          ASSERT_EQ(buf1[i], buf2[i]) << "round " << round << " op " << i;
        }
      }
      const auto items1 = batched.read(c1, [](DS t) { return t.items(); });
      const auto items2 = per_op.read(c2, [](DS t) { return t.items(); });
      ASSERT_EQ(items1, items2) << "round " << round;
      ASSERT_TRUE(
          batched.read(c1, [](DS t) { return t.check_invariants(); }));
      ASSERT_GT(c1.stats.batched_installs, 0u);
      ASSERT_EQ(c2.stats.batched_installs, 0u);
    }
    EXPECT_EQ(a1.stats().live_blocks(), 0u);
    EXPECT_EQ(a2.stats().live_blocks(), 0u);
  }
}

// Contended 4-thread net-effect run with the batch path hot (gather
// window on, tiny key range): per-key presence must reconcile with the
// net of successful inserts/erases, every op completes exactly once, and
// the final structure passes its own invariant audit — for every
// structure in the matrix.
TYPED_TEST(CombiningMatrix, ContendedNetEffectReconcilesBatched) {
  using DS = TypeParam;
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr int kKeys = 8;
  {
    reclaim::EpochReclaimer smr;
    core::CombiningAtom<DS, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, a);
    atom.set_gather_window(true);
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    std::atomic<std::uint64_t> total_ops{0}, completions{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::CombiningAtom<DS, reclaim::EpochReclaimer,
                                     alloc::MallocAlloc>::Ctx ctx(smr, a);
        const unsigned slot = atom.register_slot();
        util::Xoshiro256 rng(w + 177);
        for (int i = 0; i < 2000; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          if (rng.chance(1, 2)) {
            if (atom.insert(ctx, slot, k, k)) net[k].fetch_add(1);
          } else {
            if (atom.erase(ctx, slot, k)) net[k].fetch_sub(1);
          }
        }
        total_ops += 2000;
        completions += ctx.stats.updates + ctx.stats.helped_completions;
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(completions.load(), total_ops.load());
    typename core::CombiningAtom<DS, reclaim::EpochReclaimer,
                                 alloc::MallocAlloc>::Ctx ctx(smr, a);
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      const bool present = atom.read(ctx, [k](DS t) { return t.contains(k); });
      ASSERT_EQ(present, n == 1) << "key " << k;
    }
    EXPECT_TRUE(atom.read(ctx, [](DS t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// Value types without a default constructor are announceable: erase
// carries no payload and insert's travels in an optional.
struct Opaque {
  int v;
  explicit Opaque(int x) : v(x) {}
  bool operator==(const Opaque&) const = default;
};

TEST(CombiningBatch, ValueNeedNotBeDefaultConstructible) {
  using OT = persist::Treap<std::int64_t, Opaque>;
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::CombiningAtom<OT, reclaim::EpochReclaimer, alloc::MallocAlloc>
        atom(smr, a);
    core::CombiningAtom<OT, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx
        ctx(smr, a);
    const unsigned slot = atom.register_slot();
    EXPECT_TRUE(atom.insert(ctx, slot, 1, Opaque{11}));
    EXPECT_FALSE(atom.insert(ctx, slot, 1, Opaque{99}));
    EXPECT_TRUE(atom.erase(ctx, slot, 2) == false);
    EXPECT_TRUE(atom.read(ctx, [](OT t) { return t.find(1)->v == 11; }));
    EXPECT_TRUE(atom.erase(ctx, slot, 1));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(FlatCombining, SingleThreadSemantics) {
  FC fc;
  const unsigned slot = fc.register_slot();
  EXPECT_TRUE(fc.insert(slot, 1, 10));
  EXPECT_TRUE(fc.insert(slot, 2, 20));
  EXPECT_FALSE(fc.insert(slot, 1, 99));
  EXPECT_TRUE(fc.contains(slot, 1));
  EXPECT_FALSE(fc.contains(slot, 9));
  EXPECT_TRUE(fc.erase(slot, 1));
  EXPECT_FALSE(fc.erase(slot, 1));
  EXPECT_EQ(fc.size(slot), 1u);
}

TEST(FlatCombining, DisjointInsertsAllLand) {
  FC fc;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const unsigned slot = fc.register_slot();
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        const std::int64_t key = w * kPerThread + i;
        ASSERT_TRUE(fc.insert(slot, key, key));
      }
    });
  }
  for (auto& w : workers) w.join();
  // Tenures can't exceed operations so far (every counted tenure served
  // at least one op); snapshot before the query phase below adds more.
  const std::uint64_t write_tenures = fc.combiner_tenures();
  EXPECT_GT(write_tenures, 0u);
  EXPECT_LE(write_tenures, static_cast<std::uint64_t>(kThreads) * kPerThread);

  const unsigned slot = fc.register_slot();
  EXPECT_EQ(fc.size(slot), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::int64_t k = 0; k < kThreads * kPerThread; k += 97) {
    EXPECT_TRUE(fc.contains(slot, k));
  }
}

TEST(FlatCombining, ContendedNetEffectReconciles) {
  FC fc;
  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  std::array<std::atomic<std::int64_t>, kKeys> net{};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const unsigned slot = fc.register_slot();
      util::Xoshiro256 rng(w + 31);
      for (int i = 0; i < 4000; ++i) {
        const std::int64_t k = rng.range(0, kKeys - 1);
        if (rng.chance(1, 2)) {
          if (fc.insert(slot, k, k)) net[k].fetch_add(1);
        } else {
          if (fc.erase(slot, k)) net[k].fetch_sub(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const unsigned slot = fc.register_slot();
  for (int k = 0; k < kKeys; ++k) {
    const std::int64_t n = net[k].load();
    ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
    ASSERT_EQ(fc.contains(slot, k), n == 1) << "key " << k;
  }
}

}  // namespace
}  // namespace pathcopy
