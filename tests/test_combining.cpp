// CombiningAtom (lock-free, PSim-style) and FlatCombining (lock-based)
// semantics and accounting, single-threaded and under real contention.
//
// The strongest check here is exactly-once application: every announced
// operation must be absorbed by exactly one installed version, so the sum
// of combined_ops across threads equals the total operation count, and
// per-key "net effect" counters must reconcile with the final contents.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_roots.hpp"
#include "reclaim/watermark.hpp"
#include "seq/flat_combining.hpp"
#include "seq/seq_treap.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using FC = seq::FlatCombining<seq::SeqTreap<std::int64_t, std::int64_t>>;

template <class Smr>
class CombiningTyped : public ::testing::Test {};

using Reclaimers =
    ::testing::Types<reclaim::EpochReclaimer, reclaim::WatermarkReclaimer,
                     reclaim::HazardRootReclaimer>;
TYPED_TEST_SUITE(CombiningTyped, Reclaimers);

TYPED_TEST(CombiningTyped, SingleThreadSemantics) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    const unsigned slot = atom.register_slot();

    EXPECT_TRUE(atom.insert(ctx, slot, 1, 10));
    EXPECT_TRUE(atom.insert(ctx, slot, 2, 20));
    EXPECT_FALSE(atom.insert(ctx, slot, 1, 99));  // duplicate
    EXPECT_TRUE(atom.read(ctx, [](T t) {
      return t.contains(1) && t.contains(2) && *t.find(1) == 10;
    }));
    EXPECT_TRUE(atom.erase(ctx, slot, 1));
    EXPECT_FALSE(atom.erase(ctx, slot, 1));  // already gone
    EXPECT_FALSE(atom.erase(ctx, slot, 7));  // never present
    EXPECT_EQ(atom.size(ctx), 1u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, VersionAdvancesPerInstall) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    const unsigned slot = atom.register_slot();
    EXPECT_EQ(atom.version(), 1u);
    atom.insert(ctx, slot, 1, 1);
    EXPECT_EQ(atom.version(), 2u);
    // Unlike the plain Atom, a semantic no-op still installs a version —
    // the response must be published through the VersionRec.
    atom.insert(ctx, slot, 1, 1);
    EXPECT_EQ(atom.version(), 3u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, ResultsMatchOracle) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    const unsigned slot = atom.register_slot();
    std::set<std::int64_t> oracle;
    util::Xoshiro256 rng(7);
    for (int i = 0; i < 2000; ++i) {
      const std::int64_t k = rng.range(-40, 40);
      if (rng.chance(1, 2)) {
        ASSERT_EQ(atom.insert(ctx, slot, k, k), oracle.insert(k).second);
      } else {
        ASSERT_EQ(atom.erase(ctx, slot, k), oracle.erase(k) > 0);
      }
    }
    ASSERT_EQ(atom.size(ctx), oracle.size());
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, DisjointInsertsAllLandExactlyOnce) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1200;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> combined{0}, own_installs{0}, helped{0};
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx
            ctx(smr, a);
        const unsigned slot = atom.register_slot();
        for (std::int64_t i = 0; i < kPerThread; ++i) {
          const std::int64_t key = w * kPerThread + i;
          ASSERT_TRUE(atom.insert(ctx, slot, key, key));
        }
        // Every op completes exactly one way.
        ASSERT_EQ(ctx.stats.updates + ctx.stats.helped_completions,
                  static_cast<std::uint64_t>(kPerThread));
        combined += ctx.stats.combined_ops;
        own_installs += ctx.stats.updates;
        helped += ctx.stats.helped_completions;
      });
    }
    for (auto& w : workers) w.join();
    // Exactly-once application: the batches of all installed versions
    // partition the full operation set.
    EXPECT_EQ(combined.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(own_installs.load() + helped.load(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);

    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    EXPECT_EQ(atom.size(ctx), static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CombiningTyped, ContendedNetEffectReconciles) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  {
    TypeParam smr;
    core::CombiningAtom<T, TypeParam, alloc::MallocAlloc> atom(smr, a);
    std::array<std::atomic<std::int64_t>, kKeys> net{};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx
            ctx(smr, a);
        const unsigned slot = atom.register_slot();
        util::Xoshiro256 rng(w + 11);
        for (int i = 0; i < 2500; ++i) {
          const std::int64_t k = rng.range(0, kKeys - 1);
          if (rng.chance(1, 2)) {
            if (atom.insert(ctx, slot, k, k)) net[k].fetch_add(1);
          } else {
            if (atom.erase(ctx, slot, k)) net[k].fetch_sub(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    typename core::CombiningAtom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(
        smr, a);
    for (int k = 0; k < kKeys; ++k) {
      const std::int64_t n = net[k].load();
      ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
      const bool present =
          atom.read(ctx, [k](T t) { return t.contains(k); });
      ASSERT_EQ(present, n == 1) << "key " << k;
    }
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(FlatCombining, SingleThreadSemantics) {
  FC fc;
  const unsigned slot = fc.register_slot();
  EXPECT_TRUE(fc.insert(slot, 1, 10));
  EXPECT_TRUE(fc.insert(slot, 2, 20));
  EXPECT_FALSE(fc.insert(slot, 1, 99));
  EXPECT_TRUE(fc.contains(slot, 1));
  EXPECT_FALSE(fc.contains(slot, 9));
  EXPECT_TRUE(fc.erase(slot, 1));
  EXPECT_FALSE(fc.erase(slot, 1));
  EXPECT_EQ(fc.size(slot), 1u);
}

TEST(FlatCombining, DisjointInsertsAllLand) {
  FC fc;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const unsigned slot = fc.register_slot();
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        const std::int64_t key = w * kPerThread + i;
        ASSERT_TRUE(fc.insert(slot, key, key));
      }
    });
  }
  for (auto& w : workers) w.join();
  // Tenures can't exceed operations so far (every counted tenure served
  // at least one op); snapshot before the query phase below adds more.
  const std::uint64_t write_tenures = fc.combiner_tenures();
  EXPECT_GT(write_tenures, 0u);
  EXPECT_LE(write_tenures, static_cast<std::uint64_t>(kThreads) * kPerThread);

  const unsigned slot = fc.register_slot();
  EXPECT_EQ(fc.size(slot), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::int64_t k = 0; k < kThreads * kPerThread; k += 97) {
    EXPECT_TRUE(fc.contains(slot, k));
  }
}

TEST(FlatCombining, ContendedNetEffectReconciles) {
  FC fc;
  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  std::array<std::atomic<std::int64_t>, kKeys> net{};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const unsigned slot = fc.register_slot();
      util::Xoshiro256 rng(w + 31);
      for (int i = 0; i < 4000; ++i) {
        const std::int64_t k = rng.range(0, kKeys - 1);
        if (rng.chance(1, 2)) {
          if (fc.insert(slot, k, k)) net[k].fetch_add(1);
        } else {
          if (fc.erase(slot, k)) net[k].fetch_sub(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const unsigned slot = fc.register_slot();
  for (int k = 0; k < kKeys; ++k) {
    const std::int64_t n = net[k].load();
    ASSERT_TRUE(n == 0 || n == 1) << "key " << k << " net " << n;
    ASSERT_EQ(fc.contains(slot, k), n == 1) << "key " << k;
  }
}

}  // namespace
}  // namespace pathcopy
