// The arity- and policy-generalized simulator: B-ary path geometry, the
// B/(B−1) modified-nodes law, wide-node costs, and robustness of the
// paper's scaling effect across eviction policies.
#include <gtest/gtest.h>

#include <cmath>

#include "model/formulas.hpp"
#include "model/sim.hpp"

namespace pathcopy {
namespace {

using model::EvictionPolicy;
using model::SimConfig;
using model::SimResult;

SimConfig base_config() {
  SimConfig cfg;
  cfg.num_leaves = 1 << 16;
  cfg.cache_lines = 1 << 12;
  cfg.miss_cost = 64;
  cfg.ops = 8000;
  cfg.seed = 3;
  return cfg;
}

TEST(ModelBranching, PathLengthFollowsArity) {
  // With one process every attempt succeeds: attempts == ops, and the
  // traversal touches exactly path_len nodes per op (lines_per_node = 1),
  // so hits+misses == ops * (log_B N + 1).
  for (const std::size_t b : {2u, 4u, 8u, 16u}) {
    SimConfig cfg = base_config();
    cfg.branching = b;
    cfg.processes = 1;
    const SimResult r = model::run_protocol_sim(cfg);
    const double path =
        std::ceil(std::log2(double(cfg.num_leaves)) / std::log2(double(b))) + 1;
    EXPECT_EQ(r.traversal_hits + r.traversal_misses,
              r.attempts * static_cast<std::uint64_t>(path))
        << "B=" << b;
  }
}

TEST(ModelBranching, MissesPerRetryTrackBOverBMinus1) {
  // The generalized "≤ 2 modified nodes" law: a warm retry reloads
  // B/(B−1) path nodes in expectation under the lockstep model. The
  // event-driven sim lets a slow retry span more than one winner (same
  // slack the binary tests document), so assert the law up to that
  // drift factor, plus strict monotonicity in B.
  double prev = 1e9;
  for (const std::size_t b : {2u, 4u, 8u}) {
    SimConfig cfg = base_config();
    cfg.branching = b;
    cfg.processes = 8;
    cfg.ops = 20000;
    const SimResult r = model::run_protocol_sim(cfg);
    ASSERT_GT(r.retry_count, 1000u) << "B=" << b;
    const double law = double(b) / double(b - 1);
    EXPECT_GE(r.misses_per_retry(), 0.8 * law) << "B=" << b;
    EXPECT_LE(r.misses_per_retry(), 2.2 * law) << "B=" << b;
    EXPECT_LT(r.misses_per_retry(), prev) << "B=" << b;
    prev = r.misses_per_retry();
  }
}

TEST(ModelBranching, BinaryMatchesPaperTwoBoundUpToDrift) {
  SimConfig cfg = base_config();
  cfg.processes = 8;
  cfg.ops = 20000;
  const SimResult r = model::run_protocol_sim(cfg);
  // Paper bound is 2; event-driven drift pushes it up but never near the
  // full path length (17 here) — the sharing effect is doing the work.
  EXPECT_LE(r.misses_per_retry(), 3.5);
  EXPECT_GE(r.misses_per_retry(), 1.5);
}

TEST(ModelBranching, WideNodesMultiplyTraversalCost) {
  SimConfig narrow = base_config();
  narrow.processes = 1;
  SimConfig wide = narrow;
  wide.lines_per_node = 4;
  const SimResult rn = model::run_protocol_sim(narrow);
  const SimResult rw = model::run_protocol_sim(wide);
  // Same node count touched, 4x the line accesses.
  EXPECT_EQ(4 * (rn.traversal_hits + rn.traversal_misses),
            rw.traversal_hits + rw.traversal_misses);
}

TEST(ModelBranching, SpeedupSurvivesEveryEvictionPolicy) {
  // The paper's effect is not an LRU artifact: under every policy the
  // write-heavy UC beats the sequential baseline at P=16.
  for (const EvictionPolicy pol :
       {EvictionPolicy::kLru, EvictionPolicy::kFifo, EvictionPolicy::kClock,
        EvictionPolicy::kRandom}) {
    SimConfig cfg = base_config();
    cfg.processes = 16;
    cfg.eviction = pol;
    const double s = model::simulated_speedup(cfg);
    EXPECT_GT(s, 1.3) << model::policy_name(pol);
    EXPECT_LT(s, 20.0) << model::policy_name(pol);
  }
}

TEST(ModelBranching, WiderTreesShrinkTheConcurrentAdvantage) {
  // Wider nodes mean shorter paths; the serialized winner's retry cost is
  // dominated by the B/(B−1)·R reload either way, but the sequential
  // baseline gets faster (fewer levels miss). Net: speedup at fixed P
  // declines with B (with node size scaled to the fanout).
  double prev = 1e9;
  for (const std::size_t b : {2u, 8u, 32u}) {
    SimConfig cfg = base_config();
    cfg.branching = b;
    cfg.lines_per_node = std::max<std::size_t>(1, b / 4);  // ~16B per entry
    cfg.processes = 16;
    const double s = model::simulated_speedup(cfg);
    EXPECT_LT(s, prev * 1.15) << "B=" << b;  // allow sim noise
    prev = s;
  }
}

TEST(ModelBranching, FormulaBracketsSimAcrossArity) {
  // The closed form assumes a fully cold first attempt (the paper's
  // pessimistic "none of which might be cached"), while the sim's caches
  // persist across operations — so the sim consistently lands above the
  // formula, by a bounded factor. The formula itself must decline
  // monotonically in B (deterministic).
  double prev_formula = 1e9;
  for (const std::size_t b : {2u, 4u, 8u}) {
    SimConfig cfg = base_config();
    cfg.branching = b;
    cfg.processes = 12;
    cfg.ops = 20000;
    const double sim = model::simulated_speedup(cfg);
    const double formula = model::predicted_speedup_bary(
        double(cfg.num_leaves), double(cfg.cache_lines),
        double(cfg.miss_cost), 12.0, double(b));
    EXPECT_GE(sim, formula) << "B=" << b;
    EXPECT_LE(sim, 4.0 * formula) << "B=" << b << " sim=" << sim
                                  << " formula=" << formula;
    EXPECT_LT(formula, prev_formula) << "B=" << b;
    prev_formula = formula;
  }
}

TEST(ModelBranching, ExpectedModifiedFormula) {
  EXPECT_NEAR(model::expected_modified_bary(2, 30), 2.0, 1e-6);
  EXPECT_NEAR(model::expected_modified_bary(4, 30), 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(model::expected_modified_bary(16, 30), 16.0 / 15.0, 1e-6);
  // Truncation matters for short paths.
  EXPECT_NEAR(model::expected_modified_bary(2, 2), 1.5, 1e-9);
}

}  // namespace
}  // namespace pathcopy
