// Bulk set algebra on the persistent treap (union / intersect /
// difference, join-based) plus range erase.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/leaky.hpp"
#include "persist/treap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;

template <class Alloc>
T build(Alloc& a, const std::vector<std::int64_t>& keys, std::int64_t tag) {
  T t;
  for (const auto k : keys) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10 + tag); });
  }
  return t;
}

std::vector<std::int64_t> keys_of(const T& t) {
  std::vector<std::int64_t> out;
  t.for_each([&](const std::int64_t& k, const std::int64_t&) { out.push_back(k); });
  return out;
}

TEST(SetOps, UnionBasics) {
  alloc::Arena a;
  T x = build(a, {1, 3, 5}, 1);
  T y = build(a, {2, 3, 4}, 2);
  T u = test::apply(a, [&](auto& b) { return T::set_union(b, x, y); });
  EXPECT_EQ(keys_of(u), (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(u.check_invariants());
  // Duplicate key 3: x's value wins.
  EXPECT_EQ(*u.find(3), 31);
}

TEST(SetOps, UnionWithEmpty) {
  alloc::Arena a;
  T x = build(a, {1, 2}, 1);
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(T::set_union(b, x, T{}).root_ptr(), x.root_ptr());
  EXPECT_EQ(T::set_union(b, T{}, x).root_ptr(), x.root_ptr());
  b.rollback();
}

TEST(SetOps, UnionLeavesInputsIntact) {
  alloc::Arena a;
  T x = build(a, {1, 3, 5, 7, 9}, 1);
  T y = build(a, {2, 4, 6, 8}, 2);
  core::Builder<alloc::Arena> b(a);
  T u = T::set_union(b, x, y);
  b.seal();
  (void)b.commit();
  // Pure operation: both inputs are unchanged, valid versions.
  EXPECT_EQ(keys_of(x), (std::vector<std::int64_t>{1, 3, 5, 7, 9}));
  EXPECT_EQ(keys_of(y), (std::vector<std::int64_t>{2, 4, 6, 8}));
  EXPECT_TRUE(x.check_invariants());
  EXPECT_TRUE(y.check_invariants());
  EXPECT_EQ(u.size(), 9u);
}

TEST(SetOps, UnionSharesStructure) {
  alloc::Arena a;
  std::vector<std::int64_t> many;
  for (std::int64_t i = 0; i < 4096; ++i) many.push_back(i);
  T x = build(a, many, 1);
  T y = build(a, {100000, 100001}, 2);
  core::Builder<alloc::Arena> b(a);
  T u = T::set_union(b, x, y);
  const auto created = b.stats().created;
  b.seal();
  (void)b.commit();
  EXPECT_EQ(u.size(), 4098u);
  // O(m log(n/m)): merging 2 keys into 4096 copies a few dozen nodes, not
  // thousands; the bulk of x is shared wholesale.
  EXPECT_LT(created, 200u);
  EXPECT_GT(T::shared_nodes(x, u), x.size() - 100);
}

TEST(SetOps, UnionCanonicalShape) {
  // The union of two treaps must be structurally identical to the treap
  // built from scratch over the combined key set (canonical form).
  alloc::Arena a;
  T x = build(a, {1, 4, 9, 16, 25}, 1);
  T y = build(a, {2, 4, 8, 16, 32}, 1);
  T u = test::apply(a, [&](auto& b) { return T::set_union(b, x, y); });
  std::vector<std::int64_t> combined{1, 2, 4, 8, 9, 16, 25, 32};
  T direct = build(a, combined, 1);
  EXPECT_EQ(u.height(), direct.height());
  EXPECT_EQ(keys_of(u), keys_of(direct));
}

TEST(SetOps, IntersectBasics) {
  alloc::Arena a;
  T x = build(a, {1, 2, 3, 4, 5}, 1);
  T y = build(a, {4, 5, 6, 7}, 2);
  T i = test::apply(a, [&](auto& b) { return T::set_intersect(b, x, y); });
  EXPECT_EQ(keys_of(i), (std::vector<std::int64_t>{4, 5}));
  EXPECT_EQ(*i.find(4), 41);  // x's values
  EXPECT_TRUE(i.check_invariants());
}

TEST(SetOps, IntersectDisjointIsEmpty) {
  alloc::Arena a;
  T x = build(a, {1, 2, 3}, 1);
  T y = build(a, {4, 5, 6}, 2);
  T i = test::apply(a, [&](auto& b) { return T::set_intersect(b, x, y); });
  EXPECT_TRUE(i.empty());
}

TEST(SetOps, DifferenceBasics) {
  alloc::Arena a;
  T x = build(a, {1, 2, 3, 4, 5}, 1);
  T y = build(a, {2, 4, 6}, 2);
  T d = test::apply(a, [&](auto& b) { return T::set_difference(b, x, y); });
  EXPECT_EQ(keys_of(d), (std::vector<std::int64_t>{1, 3, 5}));
  EXPECT_TRUE(d.check_invariants());
}

TEST(SetOps, DifferenceWithSelfIsEmpty) {
  alloc::Arena a;
  T x = build(a, {1, 2, 3}, 1);
  T d = test::apply(a, [&](auto& b) { return T::set_difference(b, x, x); });
  EXPECT_TRUE(d.empty());
}

TEST(SetOps, AlgebraOracleSweep) {
  alloc::Arena a;
  util::Xoshiro256 rng(71);
  for (int round = 0; round < 8; ++round) {
    std::set<std::int64_t> xs, ys;
    const std::int64_t range = 50 + round * 40;
    for (int i = 0; i < 120; ++i) {
      xs.insert(rng.range(0, range));
      ys.insert(rng.range(0, range));
    }
    T x = build(a, {xs.begin(), xs.end()}, 1);
    T y = build(a, {ys.begin(), ys.end()}, 2);

    std::vector<std::int64_t> u_ref, i_ref, d_ref;
    std::set_union(xs.begin(), xs.end(), ys.begin(), ys.end(),
                   std::back_inserter(u_ref));
    std::set_intersection(xs.begin(), xs.end(), ys.begin(), ys.end(),
                          std::back_inserter(i_ref));
    std::set_difference(xs.begin(), xs.end(), ys.begin(), ys.end(),
                        std::back_inserter(d_ref));

    T u = test::apply(a, [&](auto& b) { return T::set_union(b, x, y); });
    T i = test::apply(a, [&](auto& b) { return T::set_intersect(b, x, y); });
    T d = test::apply(a, [&](auto& b) { return T::set_difference(b, x, y); });
    ASSERT_EQ(keys_of(u), u_ref);
    ASSERT_EQ(keys_of(i), i_ref);
    ASSERT_EQ(keys_of(d), d_ref);
    ASSERT_TRUE(u.check_invariants());
    ASSERT_TRUE(i.check_invariants());
    ASSERT_TRUE(d.check_invariants());
    // Identities: |u| = |x| + |y| - |i|; d ∪ i = x.
    ASSERT_EQ(u.size(), x.size() + y.size() - i.size());
    T di = test::apply(a, [&](auto& b) { return T::set_union(b, d, i); });
    ASSERT_EQ(keys_of(di), keys_of(x));
  }
}

TEST(EraseRange, Basics) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i);
  T t = build(a, keys, 1);
  T t2 = test::apply(a, [&](auto& b) { return t.erase_range(b, 20, 40); });
  EXPECT_EQ(t2.size(), 80u);
  EXPECT_TRUE(t2.contains(19));
  EXPECT_FALSE(t2.contains(20));
  EXPECT_FALSE(t2.contains(39));
  EXPECT_TRUE(t2.contains(40));
  EXPECT_TRUE(t2.check_invariants());
  EXPECT_EQ(t.size(), 100u);  // old version intact
}

TEST(EraseRange, EmptyRangeIsSameVersion) {
  alloc::Arena a;
  T t = build(a, {1, 2, 3}, 1);
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.erase_range(b, 10, 20).root_ptr(), t.root_ptr());
  EXPECT_EQ(t.erase_range(b, 3, 3).root_ptr(), t.root_ptr());
  EXPECT_EQ(t.erase_range(b, 5, 2).root_ptr(), t.root_ptr());  // inverted
  b.rollback();
}

TEST(EraseRange, WholeTree) {
  alloc::Arena a;
  T t = build(a, {1, 2, 3, 4}, 1);
  T t2 = test::apply(a, [&](auto& b) { return t.erase_range(b, 0, 100); });
  EXPECT_TRUE(t2.empty());
}

TEST(EraseRange, RetiresAllRemovedNodes) {
  // With MallocAlloc, erasing a range and committing must free exactly the
  // removed keys' nodes plus the copied splice path.
  alloc::MallocAlloc a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 200; ++i) keys.push_back(i);
  T t = build(a, keys, 1);
  ASSERT_EQ(a.stats().live_blocks(), 200u);
  t = test::apply(a, [&](auto& b) { return t.erase_range(b, 50, 150); });
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(a.stats().live_blocks(), 100u);  // no leak, no double free
  EXPECT_TRUE(t.check_invariants());
  T::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(EraseRange, MatchesEraseLoop) {
  alloc::Arena a;
  util::Xoshiro256 rng(9);
  std::set<std::int64_t> ref;
  std::vector<std::int64_t> keys;
  for (int i = 0; i < 300; ++i) {
    const auto k = rng.range(0, 1000);
    if (ref.insert(k).second) keys.push_back(k);
  }
  T bulk = build(a, keys, 1);
  T loop = bulk;
  bulk = test::apply(a, [&](auto& b) { return bulk.erase_range(b, 250, 750); });
  for (auto it = ref.begin(); it != ref.end();) {
    if (*it >= 250 && *it < 750) {
      const auto k = *it;
      loop = test::apply(a, [&](auto& b) { return loop.erase(b, k); });
      it = ref.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(keys_of(bulk), keys_of(loop));
  EXPECT_EQ(bulk.height(), loop.height());  // canonical form again
}


TEST(SetOps, BulkUnionAsOneAtomicUpdate) {
  // The documented UC pattern for bulk algebra: arena + leaky reclaimer
  // (pure ops do not retire the replaced version's dropped nodes).
  using Smr = reclaim::LeakyReclaimer;
  alloc::Arena arena;
  Smr smr;
  core::Atom<T, Smr, alloc::Arena> atom(smr, *arena.retire_backend());
  core::Atom<T, Smr, alloc::Arena>::Ctx ctx(smr, arena);

  for (std::int64_t i = 0; i < 100; ++i) {
    atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i * 2, i); });
  }
  // Build a delta set off to the side (a value-level persistent treap).
  T delta;
  for (std::int64_t i = 0; i < 50; ++i) {
    delta = test::apply(arena, [&](auto& b) { return delta.insert(b, i * 2 + 1, -i); });
  }
  // One atomic transition merges the whole delta.
  const auto before = atom.version();
  atom.update(ctx, [&](T cur, auto& b) { return T::set_union(b, cur, delta); });
  EXPECT_EQ(atom.version(), before + 1);
  atom.read(ctx, [&](T t) {
    EXPECT_EQ(t.size(), 150u);
    EXPECT_TRUE(t.check_invariants());
    EXPECT_TRUE(t.contains(1));   // from delta
    EXPECT_TRUE(t.contains(0));   // from the original
  });
  // delta remains a valid, unchanged version.
  EXPECT_EQ(delta.size(), 50u);
  EXPECT_TRUE(delta.check_invariants());
}

TEST(SetOps, EraseRangeUnderAtomRetiresExactly) {
  using Smr = reclaim::EpochReclaimer;
  alloc::MallocAlloc a;
  {
    Smr smr;
    core::Atom<T, Smr, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    core::Atom<T, Smr, alloc::MallocAlloc>::Ctx ctx(smr, a);
    for (std::int64_t i = 0; i < 300; ++i) {
      atom.update(ctx, [i](T t, auto& b) { return t.insert(b, i, i); });
    }
    atom.update(ctx, [](T t, auto& b) { return t.erase_range(b, 100, 200); });
    atom.read(ctx, [](T t) {
      EXPECT_EQ(t.size(), 200u);
      EXPECT_TRUE(t.check_invariants());
      EXPECT_EQ(t.count_range(100, 200), 0u);
    });
    smr.drain_all();
    EXPECT_EQ(a.stats().live_blocks(), 200u);  // removed range fully retired
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
