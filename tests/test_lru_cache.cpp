#include <gtest/gtest.h>

#include "model/lru_cache.hpp"

namespace pathcopy {
namespace {

TEST(LruCache, MissThenHit) {
  model::LruCache c(4);
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(1));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  model::LruCache c(3);
  c.access(1);
  c.access(2);
  c.access(3);
  c.access(1);      // 1 is now most recent; LRU order: 2, 3, 1
  c.access(4);      // evicts 2
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
  EXPECT_TRUE(c.contains(4));
}

TEST(LruCache, CapacityRespected) {
  model::LruCache c(8);
  for (std::uint64_t k = 0; k < 100; ++k) c.access(k);
  EXPECT_EQ(c.size(), 8u);
  // The last 8 keys survive.
  for (std::uint64_t k = 92; k < 100; ++k) EXPECT_TRUE(c.contains(k));
  EXPECT_FALSE(c.contains(91));
}

TEST(LruCache, FillDoesNotCountAccesses) {
  model::LruCache c(4);
  c.fill(7);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.access(7));  // fill made it resident
}

TEST(LruCache, FillRefreshesRecency) {
  model::LruCache c(2);
  c.access(1);
  c.access(2);  // LRU: 1, 2
  c.fill(1);    // refresh 1; LRU: 2, 1
  c.access(3);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, FillEvictsToo) {
  model::LruCache c(2);
  c.fill(1);
  c.fill(2);
  c.fill(3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.contains(1));
}

TEST(LruCache, ResetCounters) {
  model::LruCache c(2);
  c.access(1);
  c.access(1);
  c.reset_counters();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.contains(1));  // contents survive counter reset
}

TEST(LruCache, SingleLineCache) {
  model::LruCache c(1);
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(1));
  EXPECT_FALSE(c.access(2));
  EXPECT_FALSE(c.access(1));
}

TEST(LruCache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  model::LruCache c(16);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t k = 0; k < 16; ++k) c.access(k);
  }
  EXPECT_EQ(c.misses(), 16u);       // only the cold pass misses
  EXPECT_EQ(c.hits(), 2u * 16u);
}

}  // namespace
}  // namespace pathcopy
