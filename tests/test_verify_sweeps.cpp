// Parameterized sweeps over the verification and model layers: recorded
// Atom histories stay linearizable across thread-count × contention
// combinations, and the simulated scaling effect holds across the
// (eviction policy × process count) grid.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "model/sim.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;

// ----- linearizability across contention levels -----

class LinSweep
    : public ::testing::TestWithParam<std::tuple<int /*threads*/,
                                                 std::int64_t /*keys*/>> {};

TEST_P(LinSweep, AtomHistoryLinearizable) {
  const auto [threads, keys] = GetParam();
  const int ops = 1200 / threads;
  alloc::MallocAlloc a;
  verify::HistoryRecorder rec(static_cast<unsigned>(threads));
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < static_cast<unsigned>(threads); ++w) {
      workers.emplace_back([&, w] {
        core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(
            smr, a);
        util::Xoshiro256 rng(w * 31 + 7);
        for (int i = 0; i < ops; ++i) {
          const std::int64_t k = rng.range(0, keys - 1);
          switch (rng.below(3)) {
            case 0:
              rec.run(w, verify::OpType::kInsert, k, [&] {
                return atom.update(ctx, [k](T t, auto& b) {
                         return t.insert(b, k, k);
                       }) == core::UpdateResult::kInstalled;
              });
              break;
            case 1:
              rec.run(w, verify::OpType::kErase, k, [&] {
                return atom.update(ctx, [k](T t, auto& b) {
                         return t.erase(b, k);
                       }) == core::UpdateResult::kInstalled;
              });
              break;
            default:
              rec.run(w, verify::OpType::kContains, k, [&] {
                return atom.read(ctx, [k](T t) { return t.contains(k); });
              });
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  const auto verdict = verify::check_set_linearizability(rec.harvest());
  EXPECT_TRUE(verdict) << "threads=" << threads << " keys=" << keys
                       << " key " << verdict.bad_key << ": "
                       << verdict.reason;
}

// Keyspace is kept >= ops/keyspace ratio that bounds per-key projections
// under the checker's 64-event cap.
INSTANTIATE_TEST_SUITE_P(
    Grid, LinSweep,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values<std::int64_t>(48, 96, 192)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// ----- scaling effect across (policy × P) -----

class PolicySweep
    : public ::testing::TestWithParam<
          std::tuple<model::EvictionPolicy, std::size_t /*P*/>> {};

TEST_P(PolicySweep, WriteHeavySpeedupHolds) {
  const auto [policy, procs] = GetParam();
  model::SimConfig cfg;
  cfg.num_leaves = 1 << 16;
  cfg.cache_lines = 1 << 12;
  cfg.miss_cost = 64;
  cfg.processes = procs;
  cfg.ops = 8000;
  cfg.eviction = policy;
  cfg.seed = 11;
  const double s = model::simulated_speedup(cfg);
  // The paper's effect at every grid point: concurrent write-heavy UC
  // beats sequential once P >= 4, under every replacement policy.
  if (procs >= 4) {
    EXPECT_GT(s, 1.0) << model::policy_name(policy) << " P=" << procs;
  }
  // And it never exceeds the trivial bound of P (no superlinear magic).
  EXPECT_LT(s, static_cast<double>(procs) + 0.5)
      << model::policy_name(policy) << " P=" << procs;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicySweep,
    ::testing::Combine(::testing::Values(model::EvictionPolicy::kLru,
                                         model::EvictionPolicy::kFifo,
                                         model::EvictionPolicy::kClock,
                                         model::EvictionPolicy::kRandom),
                       ::testing::Values<std::size_t>(4, 8, 16)),
    [](const auto& info) {
      return std::string(model::policy_name(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pathcopy
