// Adaptive shard rebalancing: routing epochs, quantile-fitted split
// points, and live path-copying shard migration (store/rebalancer.hpp,
// store/router_epoch.hpp).
//
// The load-bearing guarantees under test:
//   * migration preserves contents exactly — no key lost, none
//     duplicated, values intact — while writers run;
//   * per-op outcomes stay correct across a flip (an op on a moving key
//     gates until its new owner holds the data, so insert/erase results
//     are computed against complete state);
//   * after a flip every shard holds exactly the keys the new topology
//     assigns it (the invariant the extraction/install/erase phases
//     maintain);
//   * consistent cuts are wholly-before or wholly-after a flip, never a
//     mixture (a mixed cut would double-count or drop the moving range);
//   * the sketch → plan → migrate loop actually balances a skewed
//     offered load.
//
// The concurrent cases run under TSan in CI (the drain handshake, the
// settle release, and the gate loop are exactly the code TSan vets).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/executor.hpp"
#include "store/rebalancer.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Smr = reclaim::EpochReclaimer;
using MA = alloc::MallocAlloc;
using PlainUc = core::Atom<T, Smr, MA>;
using CombUc = core::CombiningAtom<T, Smr, MA>;
using RangeR = store::RangeRouter<std::int64_t>;

template <class UcT>
struct Fix {
  using Uc = UcT;
  using Map = store::ShardedMap<Uc, RangeR>;
  using Reb = store::Rebalancer<Map>;
};

template <class F>
class RebalanceTyped : public ::testing::Test {};

using Fixes = ::testing::Types<Fix<PlainUc>, Fix<CombUc>>;
TYPED_TEST_SUITE(RebalanceTyped, Fixes);

TYPED_TEST(RebalanceTyped, ManualMigrationPreservesContentsAndTopology) {
  MA a;
  {
    typename TypeParam::Map map(4, a, RangeR::uniform(0, 1 << 20, 4));
    typename TypeParam::Map::Session session(map, a);
    // Skewed seed: everything lives in shard 0's uniform range.
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < 4000; k += 2) items.emplace_back(k, k * 3);
    session.seed_sorted(items.begin(), items.end());

    typename TypeParam::Reb reb(map, a);
    reb.migrate_to(RangeR({1000, 2000, 3000}));

    EXPECT_EQ(reb.stats().migrations, 1u);
    EXPECT_GT(reb.stats().keys_moved, 0u);
    EXPECT_EQ(map.current_epoch()->seq, 2u);
    EXPECT_TRUE(map.current_epoch()->is_settled());

    // Contents unchanged, no loss, no duplication.
    EXPECT_EQ(session.items(), items);
    // Every shard holds exactly its new range: [0,1000) has 500 even
    // keys, etc. — checked through per-shard sizes via a cut.
    session.read_cut([&](const store::ConsistentCut<typename TypeParam::Uc>&
                             cut) {
      for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_EQ(cut.snapshot(s).size(), 500u) << "shard " << s;
      }
      return 0;
    });
    // The map stays fully operational under the fitted topology.
    EXPECT_TRUE(session.insert(1, 7));
    EXPECT_FALSE(session.insert(0, 9));
    EXPECT_TRUE(session.erase(2));
    EXPECT_EQ(session.size(), items.size());
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(RebalanceTyped, SketchDrivenPlanBalancesSkewedLoad) {
  MA a;
  {
    typename TypeParam::Map map(8, a, RangeR::uniform(0, 1 << 20, 8));
    typename TypeParam::Map::Session session(map, a);
    typename TypeParam::Reb reb(map, a);

    // Balanced traffic: no plan.
    util::Xoshiro256 rng(11);
    for (int i = 0; i < 4096; ++i) {
      session.insert(rng.range(0, (1 << 20) - 1), 1);
    }
    EXPECT_FALSE(reb.maybe_rebalance());

    // Heavily skewed traffic: all ops land in shard 0's range.
    map.sketch().reset();
    for (int i = 0; i < 4096; ++i) {
      const std::int64_t k = rng.range(0, 999);
      if (rng.chance(1, 2)) {
        session.insert(k, k);
      } else {
        session.erase(k);
      }
    }
    ASSERT_TRUE(reb.maybe_rebalance());
    EXPECT_EQ(reb.stats().migrations, 1u);
    EXPECT_GE(reb.stats().last_imbalance, 1.3);

    // The fitted bounds slice the hot range across shards: offered load
    // per shard under the new topology is near-even.
    const auto& router = map.current_epoch()->router;
    std::vector<std::size_t> load(8, 0);
    util::Xoshiro256 probe(12);
    for (int i = 0; i < 8000; ++i) ++load[router(probe.range(0, 999), 8)];
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_GT(load[s], 8000u / 8 / 4) << "shard " << s << " still cold";
    }
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

/// 4 mixed reader/writer threads over disjoint key sets, with forced
/// migrations racing the traffic. Disjointness makes every op's outcome
/// deterministic, so the test can assert exact per-op results *through*
/// the flips, plus exact final contents.
template <class TP>
void run_concurrent_oracle(bool with_executor) {
  using Map = typename TP::Map;
  using Reb = typename TP::Reb;
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 128;
  constexpr int kRounds = 60;
  constexpr std::int64_t kSpace = 1 << 20;
  MA a;
  {
    Map map(4, a, RangeR::uniform(0, kSpace, 4));
    std::optional<store::ShardExecutor<typename TP::Uc>> exec;
    if (with_executor) exec.emplace(map, [&a]() -> MA& { return a; });
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename Map::Session session(map, a);
        // Thread w owns keys w*spread + i*7 for i in [0, kKeysPerThread):
        // scattered across the keyspace so every migration moves some.
        const std::int64_t base = w * (kSpace / kThreads);
        auto key_of = [&](int i) { return base + i * 61; };
        for (int r = 0; r < kRounds; ++r) {
          for (int i = 0; i < kKeysPerThread; ++i) {
            ASSERT_TRUE(session.insert(key_of(i), w)) << "w" << w << " r" << r;
          }
          for (int i = 0; i < kKeysPerThread; ++i) {
            ASSERT_FALSE(session.insert(key_of(i), w + 100));
            ASSERT_TRUE(session.contains(key_of(i)));
            const auto v = session.find(key_of(i));
            ASSERT_TRUE(v.has_value());
            ASSERT_EQ(*v, w);  // the first insert's value survived the move
          }
          // Erase every second key; re-check both classes.
          for (int i = 0; i < kKeysPerThread; i += 2) {
            ASSERT_TRUE(session.erase(key_of(i)));
          }
          for (int i = 0; i < kKeysPerThread; ++i) {
            ASSERT_EQ(session.contains(key_of(i)), i % 2 == 1);
          }
          for (int i = 1; i < kKeysPerThread; i += 2) {
            ASSERT_TRUE(session.erase(key_of(i)));
          }
        }
      });
    }
    // Force migrations under the traffic: alternate between topologies
    // until the workers finish.
    Reb reb(map, a);
    std::thread flipper([&] {
      bool uniform = false;
      std::uint64_t flips = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (uniform) {
          reb.migrate_to(RangeR::uniform(0, kSpace, 4));
        } else {
          reb.migrate_to(RangeR({kSpace / 16, kSpace / 8, kSpace / 2}));
        }
        uniform = !uniform;
        ++flips;
        std::this_thread::yield();
      }
      EXPECT_GT(flips, 0u);
    });
    for (auto& w : workers) w.join();
    stop.store(true);
    flipper.join();
    EXPECT_GT(reb.stats().migrations, 0u);

    // Final state: empty (every thread erased everything it inserted),
    // whatever interleaving of flips the run saw.
    typename Map::Session session(map, a);
    EXPECT_EQ(session.size(), 0u);
    EXPECT_TRUE(session.items().empty());
    if (exec.has_value()) {
      exec->stop();
      exec.reset();
    }
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(RebalanceTyped, ConcurrentOracleAcrossForcedMigrations) {
  run_concurrent_oracle<TypeParam>(/*with_executor=*/false);
}

TYPED_TEST(RebalanceTyped, ConcurrentOracleAcrossMigrationsThroughExecutor) {
  run_concurrent_oracle<TypeParam>(/*with_executor=*/true);
}

/// Batch ingest racing migrations: client batches split under one epoch
/// must land whole and answer exactly, through flips, with and without
/// the executor pipeline.
TYPED_TEST(RebalanceTyped, BatchIngestSurvivesMigrations) {
  using Map = typename TypeParam::Map;
  using Req = typename Map::BatchRequest;
  using K = typename Map::OpKind;
  constexpr std::int64_t kSpace = 1 << 16;
  MA a;
  {
    Map map(4, a, RangeR::uniform(0, kSpace, 4));
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
      workers.emplace_back([&, w] {
        typename Map::Session session(map, a);
        const std::int64_t base = w * (kSpace / 2);
        bool out[64];
        for (int r = 0; r < 200; ++r) {
          std::vector<Req> reqs;
          for (int i = 0; i < 32; ++i) {
            reqs.push_back(Req{K::kInsert, base + i * 97, w});
          }
          session.execute_batch(reqs, std::span<bool>(out, reqs.size()));
          for (int i = 0; i < 32; ++i) ASSERT_TRUE(out[i]) << "r" << r;
          reqs.clear();
          for (int i = 0; i < 32; ++i) {
            reqs.push_back(Req{K::kErase, base + i * 97, std::nullopt});
          }
          session.execute_batch(reqs, std::span<bool>(out, reqs.size()));
          for (int i = 0; i < 32; ++i) ASSERT_TRUE(out[i]) << "r" << r;
        }
      });
    }
    typename TypeParam::Reb reb(map, a);
    std::thread flipper([&] {
      bool uniform = false;
      while (!stop.load(std::memory_order_relaxed)) {
        reb.migrate_to(uniform
                           ? RangeR::uniform(0, kSpace, 4)
                           : RangeR({kSpace / 8, kSpace / 4, kSpace / 2}));
        uniform = !uniform;
        std::this_thread::yield();
      }
    });
    for (auto& w : workers) w.join();
    stop.store(true);
    flipper.join();
    typename Map::Session session(map, a);
    EXPECT_EQ(session.size(), 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

/// Consistent cuts across topology flips: with writers quiesced the
/// store's contents are a fixed oracle; a cut that mixed topologies
/// (source pinned before its erase phase, destination after its install
/// phase, or vice versa) would show duplicated or missing keys. Readers
/// hammer cuts while the flipper migrates; every cut must equal the
/// oracle exactly and carry one settled epoch token.
TYPED_TEST(RebalanceTyped, CutsNeverMixTopologies) {
  using Map = typename TypeParam::Map;
  constexpr std::int64_t kSpace = 1 << 16;
  MA a;
  {
    Map map(4, a, RangeR::uniform(0, kSpace, 4));
    typename Map::Session seeder(map, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> oracle;
    for (std::int64_t k = 0; k < kSpace; k += 37) oracle.emplace_back(k, ~k);
    seeder.seed_sorted(oracle.begin(), oracle.end());

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> cuts_taken{0};
    std::vector<std::thread> readers;
    for (int w = 0; w < 2; ++w) {
      readers.emplace_back([&] {
        typename Map::Session session(map, a);
        while (!stop.load(std::memory_order_relaxed)) {
          // items() runs over one consistent cut internally.
          const auto got = session.items();
          ASSERT_EQ(got, oracle);
          // And through the raw cut surface: per-shard sizes sum to the
          // oracle and the cut names one settled epoch.
          session.read_cut(
              [&](const store::ConsistentCut<typename TypeParam::Uc>& cut) {
                std::size_t total = 0;
                for (std::size_t s = 0; s < cut.shards(); ++s) {
                  total += cut.snapshot(s).size();
                }
                EXPECT_EQ(total, oracle.size());
                EXPECT_NE(cut.epoch_token(), nullptr);
                return 0;
              });
          cuts_taken.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    typename TypeParam::Reb reb(map, a);
    for (int f = 0; f < 40; ++f) {
      reb.migrate_to(f % 2 == 0
                         ? RangeR({kSpace / 16, kSpace / 4, kSpace / 2})
                         : RangeR::uniform(0, kSpace, 4));
      std::this_thread::yield();
    }
    stop.store(true);
    for (auto& r : readers) r.join();
    EXPECT_EQ(reb.stats().migrations, 40u);
    EXPECT_GT(cuts_taken.load(), 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

/// Stats plumbing: migration key counts and epoch waits reach the board.
TYPED_TEST(RebalanceTyped, MigrationCountersReachTheBoard) {
  MA a;
  {
    typename TypeParam::Map map(2, a, RangeR::uniform(0, 1024, 2));
    typename TypeParam::Map::Session session(map, a);
    for (std::int64_t k = 0; k < 512; ++k) session.insert(k, k);
    typename TypeParam::Reb reb(map, a);
    reb.migrate_to(RangeR({128}));  // moves [128, 512) from shard 0 to 1
    store::ShardStatsBoard board(2);
    reb.fold_into(board);
    EXPECT_EQ(board.shard(1).mig_keys_in, 384u);
    EXPECT_EQ(board.shard(0).mig_keys_out, 384u);
    EXPECT_EQ(board.total().mig_keys_in, board.total().mig_keys_out);
    EXPECT_EQ(reb.stats().keys_moved, 384u);
    EXPECT_EQ(session.size(), 512u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ===================== tablet-table rebalancing =====================
//
// The same map/migration machinery over a TabletRouter, plus the
// continuous mode. The added guarantees under test:
//   * a split-only flip migrates ZERO keys (boundaries changed, owners
//     didn't — the tablet diff is empty);
//   * a single-tablet reassignment moves exactly that tablet's resident
//     keys and nothing else;
//   * plan_tablets fixes a hot-head skew while migrating a small
//     fraction of the resident mass (the PR's headline metric, in
//     miniature);
//   * the continuous tick loop reaches balance as a stream of small
//     flips, and client ops stay exact through ≥ 20 throttled
//     single-tablet moves (the TSan-enrolled oracle).

using TabR = store::TabletRouter<std::int64_t>;

template <class UcT>
struct TabFix {
  using Uc = UcT;
  using Map = store::ShardedMap<Uc, TabR>;
  using Reb = store::Rebalancer<Map>;
};

template <class F>
class TabletRebalanceTyped : public ::testing::Test {};

using TabFixes = ::testing::Types<TabFix<PlainUc>, TabFix<CombUc>>;
TYPED_TEST_SUITE(TabletRebalanceTyped, TabFixes);

TYPED_TEST(TabletRebalanceTyped, SplitOnlyFlipMigratesZeroKeys) {
  constexpr std::int64_t kSpace = 1 << 20;
  MA a;
  {
    typename TypeParam::Map map(4, a, TabR::uniform(0, kSpace, 4));
    typename TypeParam::Map::Session session(map, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < kSpace; k += 257) items.emplace_back(k, ~k);
    session.seed_sorted(items.begin(), items.end());

    typename TypeParam::Reb reb(map, a);
    // Cut shard 0's tablet in three. Owners unchanged -> zero keys move,
    // but the epoch still runs the full publish/drain/settle protocol.
    const TabR cur = map.current_epoch()->router;
    const std::vector<std::int64_t> cuts = {kSpace / 16, kSpace / 8};
    reb.migrate_to(cur.with_split(0, std::span<const std::int64_t>(cuts)));

    EXPECT_EQ(reb.stats().migrations, 1u);
    EXPECT_EQ(reb.stats().keys_moved, 0u);
    EXPECT_EQ(map.current_epoch()->seq, 2u);
    EXPECT_TRUE(map.current_epoch()->is_settled());
    EXPECT_EQ(map.router().tablet_count(), 6u);
    EXPECT_EQ(session.items(), items);

    // And the reverse: coalescing the pieces back is also free.
    reb.migrate_to(map.router().coalesced());
    EXPECT_EQ(reb.stats().keys_moved, 0u);
    EXPECT_EQ(map.router().tablet_count(), 4u);
    EXPECT_EQ(session.items(), items);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(TabletRebalanceTyped, ReassignMovesExactlyThatTablet) {
  constexpr std::int64_t kSpace = 1 << 16;
  MA a;
  {
    typename TypeParam::Map map(4, a, TabR::uniform(0, kSpace, 4));
    typename TypeParam::Map::Session session(map, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < kSpace; k += 16) items.emplace_back(k, k);
    session.seed_sorted(items.begin(), items.end());
    const std::size_t per_shard = items.size() / 4;

    typename TypeParam::Reb reb(map, a);
    // Split tablet 0 into [0, kSpace/8) + rest, then hand the first
    // piece to shard 3: exactly its resident keys move, 0 -> 3.
    const std::vector<std::int64_t> cuts = {kSpace / 8};
    reb.migrate_to(map.router().with_split(0, std::span<const std::int64_t>(
                                                  cuts)));
    ASSERT_EQ(reb.stats().keys_moved, 0u);
    reb.migrate_to(map.router().with_owner(0, 3));

    const std::size_t piece = per_shard / 2;  // [0, kSpace/8) resident
    EXPECT_EQ(reb.stats().keys_moved, piece);
    store::ShardStatsBoard board(4);
    reb.fold_into(board);
    EXPECT_EQ(board.shard(3).mig_keys_in, piece);
    EXPECT_EQ(board.shard(0).mig_keys_out, piece);
    EXPECT_EQ(session.items(), items);

    // Shard 3 now serves two tablets: its uniform quarter + the piece.
    session.read_cut(
        [&](const store::ConsistentCut<typename TypeParam::Uc>& cut) {
          EXPECT_EQ(cut.snapshot(3).size(), per_shard + piece);
          EXPECT_EQ(cut.snapshot(0).size(), per_shard - piece);
          return 0;
        });
    EXPECT_EQ(map.router().tablets_per_shard(4)[3], 2u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(TabletRebalanceTyped, PlanFixesHotHeadCheaply) {
  constexpr std::int64_t kSpace = 1 << 20;
  MA a;
  {
    typename TypeParam::Map map(8, a, TabR::uniform(0, kSpace, 8));
    typename TypeParam::Map::Session session(map, a);
    // Uniform resident mass, then a hot head confined to [0, 1024).
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < kSpace; k += 32) items.emplace_back(k, k);
    session.seed_sorted(items.begin(), items.end());
    const std::size_t resident = session.size();

    typename TypeParam::Reb reb(map, a);
    util::Xoshiro256 rng(21);
    for (int i = 0; i < 8192; ++i) {
      const std::int64_t k = rng.range(0, 1023);
      if (rng.chance(1, 2)) {
        session.insert(k, k);
      } else {
        session.erase(k);
      }
    }
    ASSERT_TRUE(reb.maybe_rebalance());
    EXPECT_GE(reb.stats().last_imbalance, 1.3);

    // Balance reached: the offered (hot-head) load now spreads across
    // shards instead of landing on shard 0 alone.
    const TabR& router = map.router();
    std::vector<std::size_t> load(8, 0);
    util::Xoshiro256 probe(22);
    for (int i = 0; i < 8000; ++i) ++load[router(probe.range(0, 1023), 8)];
    std::size_t max_load = 0;
    for (const std::size_t l : load) max_load = std::max(max_load, l);
    EXPECT_LE(static_cast<double>(max_load), 1.3 * 8000.0 / 8.0)
        << "hot head still concentrated";

    // ... and cheaply: cold tablets kept their owners, so the migrated
    // mass is a fraction of the store, not ~all of it (PR 5's fit moved
    // ~90% of resident keys on this shape; the acceptance bound is 25%).
    EXPECT_LE(reb.stats().keys_moved, resident / 4)
        << "assignment-only planning should not repack the cold mass";
    EXPECT_GT(map.router().tablet_count(), 8u);  // the head was split
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(TabletRebalanceTyped, ContinuousTicksReachBalance) {
  constexpr std::int64_t kSpace = 1 << 20;
  MA a;
  {
    typename TypeParam::Map map(8, a, TabR::uniform(0, kSpace, 8));
    typename TypeParam::Map::Session session(map, a);
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < kSpace; k += 64) items.emplace_back(k, k);
    session.seed_sorted(items.begin(), items.end());
    const std::size_t resident = session.size();

    store::RebalanceConfig cfg;
    cfg.min_samples = 256;
    cfg.budget_keys = 1 << 20;  // throttle out of the way (tested elsewhere)
    typename TypeParam::Reb reb(map, a, cfg);

    util::Xoshiro256 rng(31);
    std::uint64_t moves = 0, splits = 0;
    double imbalance = 0.0;
    for (int round = 0; round < 200; ++round) {
      // Keep the sketch fed with the hot-head workload between ticks
      // (each flip decays the reservoir).
      for (int i = 0; i < 1024; ++i) {
        const std::int64_t k = rng.range(0, 2047);
        if (rng.chance(1, 2)) {
          session.insert(k, k);
        } else {
          session.erase(k);
        }
      }
      const store::TickResult r = reb.tick();
      if (r == store::TickResult::kMove) ++moves;
      if (r == store::TickResult::kSplit) ++splits;
      if (r == store::TickResult::kIdle) {
        imbalance = reb.stats().last_imbalance;
        if (reb.stats().plans > 0 && imbalance < 1.3 && imbalance > 0.0) {
          break;
        }
      }
    }
    EXPECT_LT(imbalance, 1.3) << "continuous mode never reached balance";
    EXPECT_GT(splits, 0u) << "hot head was never carved";
    EXPECT_GT(moves, 0u) << "no tablet ever moved";
    // Each step was small and the sum stayed a fraction of the store.
    EXPECT_LE(reb.stats().keys_moved, static_cast<std::uint64_t>(resident) / 4);
    EXPECT_EQ(reb.stats().migrations, moves + splits);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

/// The continuous-mode concurrent oracle (TSan-enrolled via this file):
/// 4 exactness workers over disjoint even keys, a hot writer hammering a
/// shifting odd-key hot range (so imbalance keeps re-arising), and a
/// ticker thread driving reb.tick() until >= 20 throttled single-tablet
/// moves have executed. Every worker op asserts its exact outcome
/// through the flips; final contents are exact.
TYPED_TEST(TabletRebalanceTyped, ContinuousOracleAcrossThrottledMoves) {
  using Map = typename TypeParam::Map;
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 96;
  constexpr std::int64_t kSpace = 1 << 20;
  constexpr std::uint64_t kWantMoves = 20;
  MA a;
  {
    Map map(4, a, TabR::uniform(0, kSpace, 4));
    store::RebalanceConfig cfg;
    cfg.min_samples = 256;
    cfg.budget_keys = 4096;
    cfg.budget_interval = std::chrono::milliseconds(2);
    typename TypeParam::Reb reb(map, a, cfg);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename Map::Session session(map, a);
        const std::int64_t base = w * (kSpace / kThreads);
        auto key_of = [&](int i) { return base + i * 62; };  // even keys
        while (!stop.load(std::memory_order_relaxed)) {
          for (int i = 0; i < kKeysPerThread; ++i) {
            ASSERT_TRUE(session.insert(key_of(i), w));
          }
          for (int i = 0; i < kKeysPerThread; ++i) {
            ASSERT_FALSE(session.insert(key_of(i), w + 100));
            const auto v = session.find(key_of(i));
            ASSERT_TRUE(v.has_value());
            ASSERT_EQ(*v, w);
          }
          for (int i = 0; i < kKeysPerThread; ++i) {
            ASSERT_TRUE(session.erase(key_of(i)));
          }
        }
      });
    }
    // Hot writer: odd keys only (disjoint from the workers), hot range
    // shifts phase so the planner always has fresh imbalance to fix.
    std::thread hot([&] {
      typename Map::Session session(map, a);
      util::Xoshiro256 rng(41);
      std::size_t phase = 0;
      std::uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t base =
            static_cast<std::int64_t>(phase) * (kSpace / 4) + 1;
        for (int j = 0; j < 256; ++j) {
          const std::int64_t k = base + 2 * rng.range(0, 511);
          session.insert(k, k);
          session.erase(k);
        }
        if (++round % 64 == 0) phase = (phase + 1) % 4;
      }
    });
    // Ticker: continuous rebalancing until enough moves have run.
    std::uint64_t moves = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (moves < kWantMoves &&
           std::chrono::steady_clock::now() < deadline) {
      if (reb.tick() == store::TickResult::kMove) ++moves;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    stop.store(true);
    for (auto& w : workers) w.join();
    hot.join();
    EXPECT_GE(moves, kWantMoves)
        << "continuous mode stalled: plans=" << reb.stats().plans
        << " splits=" << reb.stats().splits
        << " moves=" << reb.stats().assignment_moves
        << " budget_deferrals=" << reb.stats().budget_deferrals
        << " pressure_deferrals=" << reb.stats().pressure_deferrals
        << " last_imbalance=" << reb.stats().last_imbalance
        << " tablets=" << map.router().tablet_count();
    EXPECT_EQ(reb.stats().assignment_moves, moves);

    // Hot writer erased everything it inserted; workers finished their
    // rounds clean. Whatever interleaving ran: store must be empty.
    typename Map::Session session(map, a);
    EXPECT_EQ(session.size(), 0u);
    EXPECT_TRUE(session.items().empty());
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
