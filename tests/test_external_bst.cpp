#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/external_bst.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using E = persist::ExternalBst<std::int64_t, std::int64_t>;

template <class Alloc>
E insert_all(Alloc& a, E t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

TEST(ExternalBst, EmptyBasics) {
  E t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.contains(3));
  EXPECT_EQ(t.min_leaf(), nullptr);
  EXPECT_EQ(t.kth(0), nullptr);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ExternalBst, SingleLeafRoot) {
  alloc::Arena a;
  E t = test::apply(a, [&](auto& b) { return E{}.insert(b, 7, 70); });
  EXPECT_EQ(t.size(), 1u);
  ASSERT_NE(t.root_node(), nullptr);
  EXPECT_TRUE(t.root_node()->is_leaf());
  EXPECT_EQ(*t.find(7), 70);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ExternalBst, TwoLeavesShareInternalRouter) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {7, 3});
  EXPECT_EQ(t.size(), 2u);
  ASSERT_FALSE(t.root_node()->is_leaf());
  // Router equals min of right subtree (= 7).
  EXPECT_EQ(t.root_node()->key, 7);
  EXPECT_EQ(t.root_node()->left->key, 3);
  EXPECT_EQ(t.root_node()->right->key, 7);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ExternalBst, DuplicateInsertIsSameVersionNoAlloc) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  E t2 = t.insert(b, 2, 999);
  EXPECT_EQ(t2.root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);  // external BST allocates nothing on no-op
  b.rollback();
}

TEST(ExternalBst, EraseAbsentIsSameVersionNoAlloc) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.erase(b, 42).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(ExternalBst, EraseSplicesSibling) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {5, 10});
  E t2 = test::apply(a, [&](auto& b) { return t.erase(b, 5); });
  EXPECT_EQ(t2.size(), 1u);
  EXPECT_TRUE(t2.root_node()->is_leaf());
  EXPECT_EQ(t2.root_node()->key, 10);
  EXPECT_TRUE(t2.check_invariants());
}

TEST(ExternalBst, EraseLastLeafEmptiesTree) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {5});
  E t2 = test::apply(a, [&](auto& b) { return t.erase(b, 5); });
  EXPECT_TRUE(t2.empty());
}

TEST(ExternalBst, ItemsSortedAndComplete) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {9, 1, 8, 2, 7, 3, 0});
  const auto items = t.items();
  ASSERT_EQ(items.size(), 7u);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
}

TEST(ExternalBst, RankAndKth) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 50; ++i) keys.push_back(i * 2);
  E t = insert_all(a, E{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(t.kth(i), nullptr);
    EXPECT_EQ(t.kth(i)->key, keys[i]);
    EXPECT_EQ(t.rank(keys[i]), i);
  }
  EXPECT_EQ(t.rank(1), 1u);   // only key 0 is below 1
  EXPECT_EQ(t.rank(999), 50u);
  EXPECT_EQ(t.kth(50), nullptr);
}

TEST(ExternalBst, PathToEndsAtCoveringLeaf) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {1, 5, 9});
  const auto path = t.path_to(5);
  ASSERT_GE(path.size(), 2u);
  EXPECT_TRUE(path.back()->is_leaf());
  EXPECT_EQ(path.back()->key, 5);
}

TEST(ExternalBst, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  E v1 = insert_all(a, E{}, {1, 2, 3, 4});
  core::Builder<alloc::Arena> b(a);
  E v2 = v1.insert(b, 10, 100);
  b.seal();
  (void)b.commit();
  EXPECT_EQ(v1.size(), 4u);
  EXPECT_EQ(v2.size(), 5u);
  EXPECT_FALSE(v1.contains(10));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(ExternalBst, SharingAfterInsert) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 512; ++i) keys.push_back(static_cast<std::int64_t>(rng()));
  E v1 = insert_all(a, E{}, keys);
  core::Builder<alloc::Arena> b(a);
  E v2 = v1.insert(b, -1, 0);
  b.seal();
  (void)b.commit();
  const std::size_t total_v1 = 2 * v1.size() - 1;
  const std::size_t shared = E::shared_nodes(v1, v2);
  // All of v1 except the copied internal path is shared with v2.
  EXPECT_GE(shared, total_v1 - 64);
}

TEST(ExternalBst, HeightLogarithmicForRandomKeys) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 4096; ++i) keys.push_back(static_cast<std::int64_t>(rng()));
  E t = insert_all(a, E{}, keys);
  // Random insertion order: expected height ~ 2.99 log2 n ≈ 36; be generous.
  EXPECT_LE(t.height(), 60u);
}

TEST(ExternalBst, InsertOrAssign) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {1, 2});
  E t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 999); });
  EXPECT_EQ(*t2.find(2), 999);
  EXPECT_EQ(t2.size(), 2u);
  EXPECT_NE(t2.root_ptr(), t.root_ptr());
  EXPECT_TRUE(t2.check_invariants());
}

TEST(ExternalBst, RandomOpsAgainstOracle) {
  alloc::Arena a;
  E t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(17);
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t k = rng.range(-40, 40);
    if (rng.chance(1, 2)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 500 == 0) ASSERT_TRUE(t.check_invariants());
  }
  const auto items = t.items();
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(ExternalBst, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  E t;
  for (std::int64_t k = 0; k < 100; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 2 * 100u - 1);  // leaves + internals
  E::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- from_sorted + apply_sorted_batch (shared oracle harness) -----

TEST(ExternalBst, FromSortedRoundTrip) { test::from_sorted_roundtrip<E>(); }

// The bulk build is leaf-oriented: exactly 2n-1 nodes, every pair in a
// leaf, routers separating (check_invariants audits leaf/router
// separation and the size augmentation).
TEST(ExternalBst, FromSortedIsLeafOriented) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t k = 0; k < 200; ++k) items.emplace_back(k * 3, k);
  {
    alloc::MallocAlloc counted;
    E t = test::apply(counted, [&](auto& b) {
      return E::from_sorted(b, items.begin(), items.end());
    });
    EXPECT_EQ(counted.stats().live_blocks(), 2 * 200u - 1);
    EXPECT_TRUE(t.check_invariants());
    // Midpoint build: height is logarithmic, not the linked-list chain
    // a naive sequential external insert of sorted keys would produce.
    EXPECT_LE(t.height(), 10u);  // ceil(log2(200)) + 1
    E::destroy(t.root_node(), counted);
    EXPECT_EQ(counted.stats().live_blocks(), 0u);
  }
}

TEST(ExternalBstBatch, NoopBatchesShareRoot) {
  test::batch_oracle_noop_shares_root<E>();
}

TEST(ExternalBstBatch, OutcomesAndContents) {
  test::batch_oracle_outcomes<E>();
}

TEST(ExternalBstBatch, RandomBatchesMatchSequentialApplication) {
  test::batch_oracle_random<E>(6161, 40, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<E>(6162, 20, test::BatchKeyPattern::kClustered);
}

// Batch erases splice siblings upward exactly like point erases: erasing
// one side of a router leaves the other side's subtree shared, and
// erasing everything leaves the empty tree.
TEST(ExternalBstBatch, EraseRunSplicesSiblings) {
  alloc::Arena a;
  E t = insert_all(a, E{}, {10, 20, 30, 40, 50, 60, 70, 80});
  // Erase the whole left half [10, 40]; the right half must come back
  // shared, not copied.
  std::vector<E::BatchOp> ops;
  for (const std::int64_t k : {10, 20, 30, 40}) {
    ops.push_back(E::BatchOp{E::BatchOpKind::kErase, k, std::nullopt});
  }
  std::vector<E::BatchOutcome> out(ops.size());
  E t2 = test::apply(
      a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });
  EXPECT_EQ(t2.size(), 4u);
  EXPECT_TRUE(t2.check_invariants());
  EXPECT_TRUE(t.check_invariants());  // old version untouched
  EXPECT_EQ(E::shared_nodes(t, t2), 2 * 4u - 1);  // right half fully shared

  std::vector<E::BatchOp> wipe;
  for (const std::int64_t k : {50, 60, 70, 80}) {
    wipe.push_back(E::BatchOp{E::BatchOpKind::kErase, k, std::nullopt});
  }
  std::vector<E::BatchOutcome> out2(wipe.size());
  E none = test::apply(
      a, [&](auto& b) { return t2.apply_sorted_batch(b, wipe, out2); });
  EXPECT_TRUE(none.empty());
}

// PR 10 range port for the leaf-oriented tree: router keys prune, only
// leaves emit; validated against a std::set oracle plus bounded-scan
// prefix semantics. (No count_range here — the external BST is the
// per-key-fallback structure on the read-batch path too.)
TEST(ExternalBst, ForEachRangeAndScanMatchOracle) {
  test::range_oracle_random<E>(5101);
}

}  // namespace
}  // namespace pathcopy
