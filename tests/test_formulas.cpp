#include <gtest/gtest.h>

#include "model/formulas.hpp"

namespace pathcopy {
namespace {

TEST(Formulas, ExpectedModifiedBoundedByTwo) {
  // sum k/2^k converges to 2 from below.
  EXPECT_LT(model::expected_modified_on_path(1), 1.01);
  EXPECT_NEAR(model::expected_modified_on_path(20), 2.0, 1e-4);
  EXPECT_LE(model::expected_modified_on_path(64), 2.0 + 1e-9);
  EXPECT_GT(model::expected_modified_on_path(64),
            model::expected_modified_on_path(4));
}

TEST(Formulas, SeqCostMatchesAppendixA1) {
  // N=2^20, M=2^14, R=100: log M + R (log N - log M) = 14 + 100*6 = 614.
  EXPECT_DOUBLE_EQ(model::seq_op_cost(1 << 20, 1 << 14, 100), 614.0);
}

TEST(Formulas, SeqCostFullyCachedTree) {
  // M >= N: every level cached, cost = log N.
  EXPECT_DOUBLE_EQ(model::seq_op_cost(1 << 10, 1 << 12, 100), 10.0);
}

TEST(Formulas, ConcCostMatchesAppendixA2) {
  // N=2^20, R=100, P=5: R log N + 4 (2R + log N - 2)
  //   = 2000 + 4 * (200 + 18) = 2872.
  EXPECT_DOUBLE_EQ(model::conc_op_cost(1 << 20, 100, 5), 2872.0);
}

TEST(Formulas, SpeedupAtOneProcessBelowOne) {
  // P=1: concurrent cost R log N (cold path every op) exceeds the
  // sequential cached cost — matching the paper's UC 1p < 1x entries.
  const double s = model::predicted_speedup(1 << 20, 1 << 14, 100, 1);
  EXPECT_LT(s, 1.0);
  EXPECT_GT(s, 0.2);
}

TEST(Formulas, SpeedupIncreasesWithProcesses) {
  const double n = 1 << 20, m = 1 << 14, r = 100;
  double prev = model::predicted_speedup(n, m, r, 1);
  for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double s = model::predicted_speedup(n, m, r, p);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Formulas, SpeedupApproachesLimit) {
  const double n = 1 << 20, m = 1 << 14, r = 100;
  const double limit = model::speedup_limit(n, m, r);
  EXPECT_LT(model::predicted_speedup(n, m, r, 1 << 14), limit);
  EXPECT_GT(model::predicted_speedup(n, m, r, 1 << 14), 0.99 * limit);
}

TEST(Formulas, LimitGrowsWithN) {
  // The Ω(log N) claim: with R = Θ(log N) and M = N^(1-ε) the limiting
  // speedup grows as N grows.
  auto limit_at = [](double log_n) {
    const double n = std::pow(2.0, log_n);
    const double m = std::pow(2.0, 0.7 * log_n);  // M = N^0.7
    const double r = 8 * log_n;                   // R = Θ(log N)
    return model::speedup_limit(n, m, r);
  };
  EXPECT_GT(limit_at(24), limit_at(16));
  EXPECT_GT(limit_at(32), limit_at(24));
}

TEST(Formulas, SaturationPointScalesWithMinRLogN) {
  const double n = 1 << 20, m = 1 << 14;
  // Larger R means more processes are needed to reach the same fraction
  // of the limit.
  const double p_small_r = model::saturation_processes(n, m, 20, 0.9);
  const double p_large_r = model::saturation_processes(n, m, 200, 0.9);
  EXPECT_GT(p_large_r, p_small_r);
}

TEST(Formulas, PaperHeadlineShape) {
  // The paper reports ~2.4x at 4 processes and ~3.2x at 17 on the Random
  // workload. The closed form is pessimistic at small P (it charges every
  // operation one fully cold attempt), so its absolute values run lower
  // than the measurements; the *shape* — below/near 1 at tiny P, clearly
  // above 1 by P=17, monotone in between — is what must hold.
  const double n = 1e6, m = 1 << 14, r = 100;
  const double s4 = model::predicted_speedup(n, m, r, 4);
  const double s17 = model::predicted_speedup(n, m, r, 17);
  EXPECT_GT(s4, 0.5);
  EXPECT_LT(s4, 4.0);
  EXPECT_GT(s17, s4);
  EXPECT_GT(s17, 1.2);
  EXPECT_LT(s17, 5.0);
}

}  // namespace
}  // namespace pathcopy
