// Vector-clock-consistent cross-shard reads.
//
// The strongest check is the lockstep invariant: one writer alternates
// fresh-key inserts between shard 0 and shard 1 (shard 0 always first),
// so at every single instant size(shard 0) - size(shard 1) is 0 or 1.
// A reader composing independently pinned snapshots can observe any skew
// (pin shard 0, sleep through k writer rounds, pin shard 1 → negative
// skew of up to k); a reader on a consistent cut can never see anything
// but {0, 1}. The concurrent tests hammer exactly that, plus:
//
//   * clock exactness on the combining backend — the version label rides
//     in the pinned VersionRec, and with only fresh-key inserts landing
//     on a shard, size == version - 1 identically;
//   * clock lower-bound on the plain Atom — its counter trails the root
//     CAS, so size >= version - 1;
//   * per-reader clock monotonicity (successive cuts are totally ordered
//     component-wise);
//   * quiesced cuts equal the oracle, and the retry counter is surfaced
//     through OpStats / ShardStatsBoard.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "core/atom.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "store/router.hpp"
#include "store/shard_stats.hpp"
#include "store/sharded_map.hpp"
#include "store/version_vector.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using Epoch = reclaim::EpochReclaimer;
using MA = alloc::MallocAlloc;
using PlainUc = core::Atom<T, Epoch, MA>;
using CombUc = core::CombiningAtom<T, Epoch, MA>;
using RangeR = store::RangeRouter<std::int64_t>;

TEST(VersionVector, EqualityAndDominance) {
  store::VersionVector a(3), b(3);
  a[0] = 1; a[1] = 5; a[2] = 2;
  b[0] = 1; b[1] = 5; b[2] = 2;
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.dominated_by(b));
  b[2] = 3;
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
  a[0] = 9;  // incomparable: a ahead on shard 0, behind on shard 2
  EXPECT_FALSE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
}

template <class UcT>
struct CutCase {
  using Uc = UcT;
  // The combining backend binds label and snapshot atomically (the label
  // rides in the VersionRec); the plain Atom's label may trail in-flight
  // installs, so it only lower-bounds.
  static constexpr bool kExactClock =
      !std::is_same_v<UcT, core::Atom<T, Epoch, MA>>;
};

template <class C>
class CutTyped : public ::testing::Test {};

using CutBackends = ::testing::Types<CutCase<PlainUc>, CutCase<CombUc>>;
TYPED_TEST_SUITE(CutTyped, CutBackends);

// Key split at 1 << 20: writer keys 0,1,2,... go to shard 0 and
// (1<<20)+i to shard 1.
constexpr std::int64_t kSplit = std::int64_t{1} << 20;

TYPED_TEST(CutTyped, QuiescedCutMatchesOracleAndCurrentVersions) {
  using Uc = typename TypeParam::Uc;
  using Map = store::ShardedMap<Uc, RangeR>;
  MA a;
  {
    Map map(2, a, RangeR(std::vector<std::int64_t>{kSplit}));
    typename Map::Session session(map, a);
    for (std::int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(session.insert(i, i));
      ASSERT_TRUE(session.insert(kSplit + i, i));
    }
    session.read_cut([&](const store::ConsistentCut<Uc>& cut) {
      EXPECT_EQ(cut.shards(), 2u);
      EXPECT_EQ(cut.snapshot(0).size(), 100u);
      EXPECT_EQ(cut.snapshot(1).size(), 100u);
      EXPECT_EQ(cut.retries(), 0u);  // no writer racing: first pass stable
      // Quiesced, so the clock must equal the live version counters.
      EXPECT_EQ(cut.clock()[0], map.shard(0).version());
      EXPECT_EQ(cut.clock()[1], map.shard(1).version());
    });
    EXPECT_EQ(session.size(), 200u);
    // Each shard's counters saw the cut participations.
    EXPECT_GT(session.shard_stats(0).cut_reads, 0u);
    EXPECT_EQ(session.shard_stats(0).cut_retries, 0u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CutTyped, ConcurrentLockstepWriterNeverSkewsTheCut) {
  using Uc = typename TypeParam::Uc;
  using Map = store::ShardedMap<Uc, RangeR>;
  MA a;
  constexpr int kRounds = 3000;
  constexpr int kReaders = 2;
  {
    Map map(2, a, RangeR(std::vector<std::int64_t>{kSplit}));
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> cuts_taken{0};

    std::thread writer([&] {
      typename Map::Session session(map, a);
      for (std::int64_t i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(session.insert(i, i));           // shard 0 first
        ASSERT_TRUE(session.insert(kSplit + i, i));  // then shard 1
      }
      done.store(true, std::memory_order_release);
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        typename Map::Session session(map, a);
        store::VersionVector prev;
        while (!done.load(std::memory_order_acquire)) {
          session.read_cut([&](const store::ConsistentCut<Uc>& cut) {
            const std::size_t n0 = cut.snapshot(0).size();
            const std::size_t n1 = cut.snapshot(1).size();
            // The lockstep invariant: at every instant shard 0 leads
            // shard 1 by 0 or 1 fresh-key inserts. Only a true cut can
            // guarantee observing it.
            ASSERT_GE(n0, n1);
            ASSERT_LE(n0 - n1, 1u);
            // Fresh-key inserts only: every install grows the shard by
            // one, so size determines version exactly...
            for (std::size_t s = 0; s < 2; ++s) {
              const std::uint64_t v = cut.clock()[s];
              const std::size_t n = cut.snapshot(s).size();
              if (TypeParam::kExactClock) {
                ASSERT_EQ(n, v - 1) << "shard " << s;
              } else {
                // ...while the Atom's label may trail in-flight bumps.
                ASSERT_GE(n + 1, v) << "shard " << s;
              }
            }
            // Per-reader clocks are totally ordered: versions only grow.
            if (prev.size() != 0) {
              ASSERT_TRUE(prev.dominated_by(cut.clock()));
            }
            prev = cut.clock();
          });
          cuts_taken.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    writer.join();
    for (auto& t : readers) t.join();
    EXPECT_GT(cuts_taken.load(), 0u);

    typename Map::Session session(map, a);
    EXPECT_EQ(session.size(), 2u * kRounds);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(CutTyped, ItemsAndForEachReadOneCut) {
  using Uc = typename TypeParam::Uc;
  using Map = store::ShardedMap<Uc, RangeR>;
  MA a;
  constexpr int kRounds = 1200;
  {
    Map map(2, a, RangeR(std::vector<std::int64_t>{kSplit}));
    std::atomic<bool> done{false};
    std::thread writer([&] {
      typename Map::Session session(map, a);
      for (std::int64_t i = 0; i < kRounds; ++i) {
        session.insert(i, i);
        session.insert(kSplit + i, i);
      }
      done.store(true, std::memory_order_release);
    });
    std::thread reader([&] {
      typename Map::Session session(map, a);
      while (!done.load(std::memory_order_acquire)) {
        const auto items = session.items();
        // Ordered iteration under the range router concatenates shard 0
        // then shard 1; derive per-shard sizes from the key ranges and
        // re-check the lockstep invariant through the iteration surface.
        std::size_t n0 = 0;
        std::int64_t prev_key = -1;
        for (const auto& [k, v] : items) {
          ASSERT_GT(k, prev_key) << "iteration out of order";
          prev_key = k;
          if (k < kSplit) ++n0;
        }
        const std::size_t n1 = items.size() - n0;
        ASSERT_GE(n0, n1);
        ASSERT_LE(n0 - n1, 1u);
      }
    });
    writer.join();
    reader.join();
    typename Map::Session session(map, a);
    EXPECT_EQ(session.items().size(), 2u * kRounds);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// White-box: drive ConsistentCut::collect directly and install a write
// on shard 0 between the reader's pin and its validation probe — exactly
// the race the protocol exists to absorb. The cut must re-pin shard 0
// (one counted retry, reported through on_retry), converge, and hand
// back the post-write snapshot under a clock matching the live version.
TEST(CutRetry, MovedShardIsRepinnedAndCounted) {
  using Map = store::ShardedMap<CombUc, RangeR>;
  MA a;
  {
    Map map(2, a, RangeR(std::vector<std::int64_t>{kSplit}));
    typename Map::Session writer(map, a);
    typename CombUc::Ctx rctx0(map.shard(0).reclaimer(), a);
    typename CombUc::Ctx rctx1(map.shard(1).reclaimer(), a);
    ASSERT_TRUE(writer.insert(1, 1));
    ASSERT_TRUE(writer.insert(kSplit + 1, 1));
    store::ConsistentCut<CombUc> cut;
    std::vector<std::size_t> retried;
    bool injected = false;
    bool seen_shard1 = false;
    cut.collect(
        2,
        [&](std::size_t s) -> CombUc& {
          // The pin pass visits shard 0 then shard 1; the next shard-0
          // call is the validation probe — inject the racing write there.
          if (s == 1) seen_shard1 = true;
          if (s == 0 && seen_shard1 && !injected) {
            injected = true;
            EXPECT_TRUE(writer.insert(2, 2));
          }
          return map.shard(s);
        },
        [&](std::size_t s) -> typename CombUc::Ctx& {
          return s == 0 ? rctx0 : rctx1;
        },
        [&](std::size_t s) { retried.push_back(s); });
    EXPECT_TRUE(injected);
    EXPECT_EQ(cut.retries(), 1u);
    ASSERT_EQ(retried.size(), 1u);
    EXPECT_EQ(retried[0], 0u);
    EXPECT_EQ(cut.snapshot(0).size(), 2u);  // the re-pin saw the write
    EXPECT_EQ(cut.snapshot(1).size(), 1u);
    EXPECT_EQ(cut.clock()[0], map.shard(0).version());
    cut.release();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// Empty-token regression: the plain Atom used to publish nullptr for
// empty versions — the one recyclable token, patched over with a version
// cross-check that itself had an ABA (tests/test_model_check.cpp holds
// the schedule). Empty versions now carry fresh tagged sentinel tokens,
// so a shard that goes empty -> non-empty -> empty between pin and probe
// is caught by the token comparison alone, like every other transition.
TEST(CutRetry, EmptyShardAbaIsCaughtByTokenAlone) {
  using Map = store::ShardedMap<PlainUc, RangeR>;
  MA a;
  {
    Map map(2, a, RangeR(std::vector<std::int64_t>{kSplit}));
    typename Map::Session writer(map, a);
    typename PlainUc::Ctx rctx0(map.shard(0).reclaimer(), a);
    typename PlainUc::Ctx rctx1(map.shard(1).reclaimer(), a);
    // Shard 0 stays empty (null token); shard 1 holds a key.
    ASSERT_TRUE(writer.insert(kSplit + 1, 1));
    store::ConsistentCut<PlainUc> cut;
    std::vector<std::size_t> retried;
    bool injected = false;
    bool seen_shard1 = false;
    cut.collect(
        2,
        [&](std::size_t s) -> PlainUc& {
          if (s == 1) seen_shard1 = true;
          if (s == 0 && seen_shard1 && !injected) {
            injected = true;
            // Two installs whose net root is nullptr again.
            EXPECT_TRUE(writer.insert(1, 1));
            EXPECT_TRUE(writer.erase(1));
          }
          return map.shard(s);
        },
        [&](std::size_t s) -> typename PlainUc::Ctx& {
          return s == 0 ? rctx0 : rctx1;
        },
        [&](std::size_t s) { retried.push_back(s); });
    EXPECT_TRUE(injected);
    ASSERT_EQ(retried.size(), 1u);
    EXPECT_EQ(retried[0], 0u);
    EXPECT_EQ(cut.snapshot(0).size(), 0u);
    EXPECT_EQ(cut.clock()[0], map.shard(0).version());
    cut.release();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(CutStats, RetryCounterRidesTheStatsBoard) {
  // Deterministic surface check: fold a session whose counters include
  // cut activity into the board and make sure the roll-up keeps them.
  using Map = store::ShardedMap<CombUc, RangeR>;
  MA a;
  {
    Map map(2, a, RangeR(std::vector<std::int64_t>{kSplit}));
    typename Map::Session session(map, a);
    session.insert(1, 1);
    session.insert(kSplit + 1, 1);
    (void)session.size();
    (void)session.size();
    store::ShardStatsBoard board(2);
    board.add_session(session);
    EXPECT_EQ(board.total().cut_reads, 4u);  // 2 cuts × 2 shards
    EXPECT_EQ(board.total().cut_retries,
              session.shard_stats(0).cut_retries +
                  session.shard_stats(1).cut_retries);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
