// Parameterized property sweeps: randomized histories checked against an
// oracle across seeds, sizes and structures, plus persistence snapshots
// and simulator grids.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "model/sim.hpp"
#include "persist/avl.hpp"
#include "persist/external_bst.hpp"
#include "persist/leftist_heap.hpp"
#include "persist/treap.hpp"
#include "persist/wbt.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using A = persist::AvlTree<std::int64_t, std::int64_t>;
using E = persist::ExternalBst<std::int64_t, std::int64_t>;
using WB = persist::WbTree<std::int64_t, std::int64_t>;

// ---------------------------------------------------------------------
// Oracle sweep: (seed, ops, key_range) grid, all three ordered structures.
// ---------------------------------------------------------------------

using SweepParam = std::tuple<std::uint64_t /*seed*/, int /*ops*/, std::int64_t /*range*/>;

class OrderedStructureSweep : public ::testing::TestWithParam<SweepParam> {};

template <class DS>
void run_oracle_sweep(std::uint64_t seed, int ops, std::int64_t range) {
  alloc::Arena arena;
  DS t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const std::int64_t k = rng.range(-range, range);
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      t = test::apply(arena, [&](auto& b) { return t.insert(b, k, k * 2); });
      oracle.emplace(k, k * 2);
    } else if (action == 1) {
      t = test::apply(arena, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    } else {
      t = test::apply(arena,
                      [&](auto& b) { return t.insert_or_assign(b, k, k * 3); });
      oracle.insert_or_assign(k, k * 3);
    }
    ASSERT_EQ(t.size(), oracle.size());
    // Point lookups agree.
    const auto* found = t.find(k);
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      ASSERT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      ASSERT_EQ(*found, it->second);
    }
  }
  ASSERT_TRUE(t.check_invariants());
  const auto items = t.items();
  ASSERT_EQ(items.size(), oracle.size());
  auto it = oracle.begin();
  for (std::size_t i = 0; i < items.size(); ++i, ++it) {
    ASSERT_EQ(items[i].first, it->first);
    ASSERT_EQ(items[i].second, it->second);
  }
}

TEST_P(OrderedStructureSweep, TreapMatchesOracle) {
  const auto [seed, ops, range] = GetParam();
  run_oracle_sweep<T>(seed, ops, range);
}

TEST_P(OrderedStructureSweep, AvlMatchesOracle) {
  const auto [seed, ops, range] = GetParam();
  run_oracle_sweep<A>(seed, ops, range);
}

TEST_P(OrderedStructureSweep, ExternalBstMatchesOracle) {
  const auto [seed, ops, range] = GetParam();
  run_oracle_sweep<E>(seed, ops, range);
}

TEST_P(OrderedStructureSweep, WeightBalancedMatchesOracle) {
  const auto [seed, ops, range] = GetParam();
  run_oracle_sweep<WB>(seed, ops, range);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OrderedStructureSweep,
    ::testing::Values(SweepParam{1, 800, 30},     // dense: heavy collisions
                      SweepParam{2, 800, 100000}, // sparse: mostly inserts land
                      SweepParam{3, 2000, 500},   // medium density
                      SweepParam{4, 400, 5},      // tiny key space, churn
                      SweepParam{5, 1500, 64}));

// ---------------------------------------------------------------------
// Persistence sweep: every recorded version must stay equal to the oracle
// state captured when it was created.
// ---------------------------------------------------------------------

class PersistenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistenceSweep, AllVersionsStayFrozen) {
  const std::uint64_t seed = GetParam();
  alloc::Arena arena;
  T t;
  std::map<std::int64_t, std::int64_t> oracle;
  std::vector<std::pair<T, std::map<std::int64_t, std::int64_t>>> checkpoints;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 600; ++i) {
    const std::int64_t k = rng.range(-64, 64);
    if (rng.chance(1, 2)) {
      // Keep superseded nodes alive (arena, no frees): old versions valid.
      core::Builder<alloc::Arena> b(arena);
      t = t.insert(b, k, k);
      b.seal();
      (void)b.commit();
      oracle.emplace(k, k);
    } else {
      core::Builder<alloc::Arena> b(arena);
      t = t.erase(b, k);
      b.seal();
      (void)b.commit();
      oracle.erase(k);
    }
    if (i % 50 == 0) checkpoints.emplace_back(t, oracle);
  }
  ASSERT_EQ(checkpoints.size(), 12u);
  for (const auto& [version, frozen_oracle] : checkpoints) {
    ASSERT_EQ(version.size(), frozen_oracle.size());
    ASSERT_TRUE(version.check_invariants());
    auto it = frozen_oracle.begin();
    const auto items = version.items();
    for (std::size_t i = 0; i < items.size(); ++i, ++it) {
      ASSERT_EQ(items[i].first, it->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------
// Treap canonical-shape sweep: any permutation of the same key set builds
// the identical tree.
// ---------------------------------------------------------------------

class CanonicalShapeSweep : public ::testing::TestWithParam<std::uint64_t> {};

void collect_preorder(const T::Node* n, std::vector<std::int64_t>& out) {
  if (n == nullptr) return;
  out.push_back(n->key);
  collect_preorder(n->left, out);
  collect_preorder(n->right, out);
}

TEST_P(CanonicalShapeSweep, PermutationInvariance) {
  const std::uint64_t seed = GetParam();
  alloc::Arena arena;
  util::Xoshiro256 rng(seed);
  std::set<std::int64_t> key_set;
  while (key_set.size() < 300) key_set.insert(rng.range(-10000, 10000));
  std::vector<std::int64_t> keys(key_set.begin(), key_set.end());

  auto build = [&](const std::vector<std::int64_t>& order) {
    T t;
    for (const auto k : order) {
      t = test::apply(arena, [&](auto& b) { return t.insert(b, k, k); });
    }
    return t;
  };
  const T sorted_build = build(keys);
  auto shuffled = keys;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }
  const T shuffled_build = build(shuffled);
  // Identical shape => identical height and full node-level sharing count
  // equal to... distinct trees, so compare structurally via pre-order keys.
  std::vector<std::int64_t> pre1, pre2;
  collect_preorder(sorted_build.root_node(), pre1);
  collect_preorder(shuffled_build.root_node(), pre2);
  EXPECT_EQ(pre1, pre2);

  // And removing a random half (in any order) keeps shapes canonical.
  std::vector<std::int64_t> to_remove(keys.begin(), keys.begin() + 150);
  auto t1 = sorted_build;
  for (const auto k : to_remove) {
    t1 = test::apply(arena, [&](auto& b) { return t1.erase(b, k); });
  }
  std::vector<std::int64_t> remaining(keys.begin() + 150, keys.end());
  const T rebuilt = build(remaining);
  std::vector<std::int64_t> pre3, pre4;
  collect_preorder(t1.root_node(), pre3);
  collect_preorder(rebuilt.root_node(), pre4);
  EXPECT_EQ(pre3, pre4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalShapeSweep,
                         ::testing::Values(7u, 8u, 9u));

// ---------------------------------------------------------------------
// Heap sweep.
// ---------------------------------------------------------------------

class HeapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapSweep, MatchesPriorityQueueOracle) {
  const std::uint64_t seed = GetParam();
  alloc::Arena arena;
  persist::LeftistHeap<std::int64_t> h;
  std::multiset<std::int64_t> oracle;
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < 1500; ++i) {
    if (oracle.empty() || rng.chance(11, 20)) {
      const std::int64_t v = rng.range(-1000, 1000);
      h = test::apply(arena, [&](auto& b) { return h.push(b, v); });
      oracle.insert(v);
    } else {
      ASSERT_EQ(h.top(), *oracle.begin());
      h = test::apply(arena, [&](auto& b) { return h.pop(b); });
      oracle.erase(oracle.begin());
    }
    ASSERT_EQ(h.size(), oracle.size());
  }
  ASSERT_TRUE(h.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapSweep, ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------
// Simulator grid: core scaling claims hold across the parameter space.
// ---------------------------------------------------------------------

using SimParam = std::tuple<std::size_t /*P*/, std::uint64_t /*R*/>;

class SimGrid : public ::testing::TestWithParam<SimParam> {};

TEST_P(SimGrid, RetryMissesStaySmallEverywhere) {
  const auto [p, r] = GetParam();
  model::SimConfig cfg;
  cfg.num_leaves = 1 << 13;
  cfg.cache_lines = 1 << 9;
  cfg.miss_cost = r;
  cfg.processes = p;
  cfg.ops = 3000;
  const auto res = model::run_protocol_sim(cfg);
  if (res.retry_count > 200) {
    // Path length is 14; retries must miss only a small constant.
    EXPECT_LT(res.misses_per_retry(), 5.0);
  }
  // Determinism across the grid.
  const auto res2 = model::run_protocol_sim(cfg);
  EXPECT_EQ(res.total_ticks, res2.total_ticks);
}

TEST_P(SimGrid, ThroughputNeverBelowHalfSequential) {
  // Even at P=1 (pure overhead: every op pays a cold path copy) the UC
  // simulation should stay within 2x of the mutating baseline.
  const auto [p, r] = GetParam();
  model::SimConfig cfg;
  cfg.num_leaves = 1 << 13;
  cfg.cache_lines = 1 << 9;
  cfg.miss_cost = r;
  cfg.processes = p;
  cfg.ops = 3000;
  EXPECT_GT(model::simulated_speedup(cfg), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimGrid,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4, 8, 16),
                       ::testing::Values<std::uint64_t>(16, 64, 256)));

}  // namespace
}  // namespace pathcopy
