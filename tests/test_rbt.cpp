#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "alloc/malloc_alloc.hpp"
#include "persist/rbt.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using R = persist::RbTree<std::int64_t, std::int64_t>;

template <class Alloc>
R insert_all(Alloc& al, R t, const std::vector<std::int64_t>& keys) {
  for (const auto k : keys) {
    t = test::apply(al, [&](auto& b) { return t.insert(b, k, k * 10); });
  }
  return t;
}

std::vector<std::int64_t> iota_keys(std::int64_t n) {
  std::vector<std::int64_t> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) keys.push_back(i);
  return keys;
}

TEST(Rbt, EmptyBasics) {
  R t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_EQ(t.black_height(), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.min_node(), nullptr);
  EXPECT_EQ(t.max_node(), nullptr);
}

TEST(Rbt, AscendingInsertKeepsRedBlackContract) {
  alloc::Arena a;
  R t = insert_all(a, R{}, iota_keys(1024));
  EXPECT_EQ(t.size(), 1024u);
  EXPECT_TRUE(t.check_invariants());
  // Red-black height bound: <= 2 log2(n+1) = 20 for n=1024.
  EXPECT_LE(t.height(), 20u);
}

TEST(Rbt, DescendingInsertKeepsRedBlackContract) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 1024; i > 0; --i) keys.push_back(i);
  R t = insert_all(a, R{}, keys);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_LE(t.height(), 20u);
}

TEST(Rbt, InvariantHoldsAfterEveryInsert) {
  alloc::Arena a;
  util::Xoshiro256 rng(99);
  R t;
  for (int i = 0; i < 512; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.below(4096));
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
    ASSERT_TRUE(t.check_invariants()) << "after insert #" << i;
  }
}

TEST(Rbt, DuplicateInsertReturnsSameRoot) {
  alloc::Arena a;
  R t = insert_all(a, R{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.insert(b, 2, 0).root_ptr(), t.root_ptr());
  EXPECT_EQ(b.fresh_count(), 0u);
  b.rollback();
}

TEST(Rbt, EraseAbsentReturnsSameRoot) {
  alloc::Arena a;
  R t = insert_all(a, R{}, {1, 2, 3});
  core::Builder<alloc::Arena> b(a);
  EXPECT_EQ(t.erase(b, 9).root_ptr(), t.root_ptr());
  b.rollback();
}

TEST(Rbt, EraseLeafInternalAndRoot) {
  alloc::Arena a;
  R t = insert_all(a, R{}, {8, 4, 12, 2, 6, 10, 14, 1, 3});
  t = test::apply(a, [&](auto& b) { return t.erase(b, 3); });
  EXPECT_FALSE(t.contains(3));
  EXPECT_TRUE(t.check_invariants());
  t = test::apply(a, [&](auto& b) { return t.erase(b, 2); });
  EXPECT_FALSE(t.contains(2));
  EXPECT_TRUE(t.check_invariants());
  t = test::apply(a, [&](auto& b) { return t.erase(b, 4); });
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.check_invariants());
  t = test::apply(a, [&](auto& b) { return t.erase(b, 8); });
  EXPECT_FALSE(t.contains(8));
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), 5u);
}

TEST(Rbt, EraseEverythingInRandomOrder) {
  alloc::Arena a;
  const auto keys = iota_keys(256);
  R t = insert_all(a, R{}, keys);
  util::Xoshiro256 rng(5);
  std::vector<std::int64_t> order = keys;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (const auto k : order) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants()) << "after erasing " << k;
  }
  EXPECT_TRUE(t.empty());
}

TEST(Rbt, EraseMinRepeatedlyExercisesAppendChains) {
  alloc::Arena a;
  R t = insert_all(a, R{}, iota_keys(128));
  for (std::int64_t k = 0; k < 128; ++k) {
    t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    ASSERT_TRUE(t.check_invariants());
    ASSERT_EQ(t.size(), static_cast<std::size_t>(127 - k));
  }
}

TEST(Rbt, EraseRootRepeatedly) {
  alloc::Arena a;
  R t = insert_all(a, R{}, iota_keys(200));
  while (!t.empty()) {
    const std::int64_t root_key = t.root_node()->key;
    t = test::apply(a, [&](auto& b) { return t.erase(b, root_key); });
    ASSERT_TRUE(t.check_invariants());
  }
}

TEST(Rbt, RankAndKth) {
  alloc::Arena a;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 100; ++i) keys.push_back(i * 5);
  R t = insert_all(a, R{}, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(t.kth(i), nullptr);
    EXPECT_EQ(t.kth(i)->key, keys[i]);
    EXPECT_EQ(t.rank(keys[i]), i);
  }
  EXPECT_EQ(t.kth(keys.size()), nullptr);
  EXPECT_EQ(t.rank(-1), 0u);
  EXPECT_EQ(t.rank(10000), keys.size());
}

TEST(Rbt, FloorCeilingCountRange) {
  alloc::Arena a;
  R t = insert_all(a, R{}, {10, 20, 30, 40});
  EXPECT_EQ(t.floor_node(25)->key, 20);
  EXPECT_EQ(t.floor_node(20)->key, 20);
  EXPECT_EQ(t.floor_node(5), nullptr);
  EXPECT_EQ(t.ceiling_node(25)->key, 30);
  EXPECT_EQ(t.ceiling_node(30)->key, 30);
  EXPECT_EQ(t.ceiling_node(45), nullptr);
  EXPECT_EQ(t.count_range(10, 40), 3u);
  EXPECT_EQ(t.count_range(11, 40), 2u);
  EXPECT_EQ(t.count_range(40, 10), 0u);
}

TEST(Rbt, MinMaxItemsSorted) {
  alloc::Arena a;
  R t = insert_all(a, R{}, {5, 1, 9, 3});
  EXPECT_EQ(t.min_node()->key, 1);
  EXPECT_EQ(t.max_node()->key, 9);
  const auto items = t.items();
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  EXPECT_EQ(items.size(), 4u);
}

TEST(Rbt, PersistenceOldVersionUnchanged) {
  alloc::Arena a;
  R v1 = insert_all(a, R{}, {1, 2, 3, 4, 5, 6, 7});
  core::Builder<alloc::Arena> b(a);
  R v2 = v1.erase(b, 4);
  b.seal();
  (void)b.commit();
  EXPECT_TRUE(v1.contains(4));
  EXPECT_FALSE(v2.contains(4));
  EXPECT_TRUE(v1.check_invariants());
  EXPECT_TRUE(v2.check_invariants());
}

TEST(Rbt, SharingAfterInsert) {
  alloc::Arena a;
  R v1 = insert_all(a, R{}, iota_keys(2048));
  core::Builder<alloc::Arena> b(a);
  R v2 = v1.insert(b, 99999, 0);
  b.seal();
  (void)b.commit();
  const std::size_t shared = R::shared_nodes(v1, v2);
  // The copied prefix is bounded by the path plus recoloring fan-out.
  EXPECT_GE(shared, v1.size() - 40);
}

TEST(Rbt, InsertOrAssign) {
  alloc::Arena a;
  R t = insert_all(a, R{}, {1, 2, 3});
  R t2 = test::apply(a, [&](auto& b) { return t.insert_or_assign(b, 2, 42); });
  EXPECT_EQ(*t2.find(2), 42);
  EXPECT_EQ(*t.find(2), 20);
  EXPECT_TRUE(t2.check_invariants());
  // Assigning to an absent key inserts it.
  R t3 = test::apply(a, [&](auto& b) { return t2.insert_or_assign(b, 7, 70); });
  EXPECT_EQ(*t3.find(7), 70);
  EXPECT_TRUE(t3.check_invariants());
}

TEST(Rbt, BlackHeightIsLogarithmic) {
  alloc::Arena a;
  R t = insert_all(a, R{}, iota_keys(4096));
  const double log2n = std::log2(4096.0 + 1.0);
  EXPECT_GE(t.black_height(), static_cast<std::size_t>(log2n / 2.0));
  EXPECT_LE(t.black_height(), static_cast<std::size_t>(log2n) + 1);
}

TEST(Rbt, RandomOpsAgainstOracle) {
  alloc::Arena a;
  R t;
  std::map<std::int64_t, std::int64_t> oracle;
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t k = rng.range(-60, 60);
    if (rng.chance(3, 5)) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
      oracle.emplace(k, k);
    } else {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
      oracle.erase(k);
    }
    ASSERT_EQ(t.size(), oracle.size());
    if (i % 250 == 0) { ASSERT_TRUE(t.check_invariants()); }
  }
  EXPECT_TRUE(t.check_invariants());
  const auto items = t.items();
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(items[i].first, k);
    ++i;
  }
}

TEST(Rbt, DestroyFreesEverything) {
  alloc::MallocAlloc a;
  R t;
  for (std::int64_t k = 0; k < 150; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  EXPECT_EQ(a.stats().live_blocks(), 150u);
  R::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(Rbt, NoLeaksThroughInsertEraseCycles) {
  alloc::MallocAlloc a;
  R t;
  for (std::int64_t k = 0; k < 64; ++k) {
    t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
  }
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (std::int64_t k = 64; k < 96; ++k) {
      t = test::apply(a, [&](auto& b) { return t.insert(b, k, k); });
    }
    for (std::int64_t k = 64; k < 96; ++k) {
      t = test::apply(a, [&](auto& b) { return t.erase(b, k); });
    }
    ASSERT_TRUE(t.check_invariants());
  }
  // Only the 64 surviving keys' nodes remain live.
  EXPECT_EQ(a.stats().live_blocks(), 64u);
  R::destroy(t.root_node(), a);
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

// ----- from_sorted + apply_sorted_batch (shared oracle harness) -----

TEST(Rbt, FromSortedRoundTrip) { test::from_sorted_roundtrip<R>(); }

// The leveled coloring (bottommost midpoint level red, the rest black)
// must satisfy the full red/black contract at every size, including the
// awkward just-past-a-power-of-two ones; check_invariants audits BST
// order, black root, no red-red edge, and uniform black height.
TEST(Rbt, FromSortedColoringHoldsAcrossSizes) {
  alloc::Arena a;
  for (std::int64_t n = 0; n <= 300; ++n) {
    std::vector<std::pair<std::int64_t, std::int64_t>> items;
    for (std::int64_t k = 0; k < n; ++k) items.emplace_back(k, k);
    R t = test::apply(a, [&](auto& b) {
      return R::from_sorted(b, items.begin(), items.end());
    });
    ASSERT_TRUE(t.check_invariants()) << "n = " << n;
    ASSERT_EQ(t.size(), static_cast<std::size_t>(n));
  }
}

TEST(RbtBatch, NoopBatchesShareRoot) {
  test::batch_oracle_noop_shares_root<R>();
}

TEST(RbtBatch, OutcomesAndContents) { test::batch_oracle_outcomes<R>(); }

TEST(RbtBatch, RandomBatchesMatchSequentialApplication) {
  test::batch_oracle_random<R>(8181, 40, test::BatchKeyPattern::kUniform);
  test::batch_oracle_random<R>(8182, 20, test::BatchKeyPattern::kClustered);
}

// Red/black audit after a reshaping batch on a big tree: the join spine
// descent and recolor cascade must leave uniform black height and no
// red-red edge, with the deterministic height bound intact.
TEST(RbtBatch, BigBatchKeepsRedBlackContract) {
  alloc::Arena a;
  std::vector<std::pair<std::int64_t, std::int64_t>> items;
  for (std::int64_t k = 0; k < 4096; ++k) items.emplace_back(k * 2, k);
  R t = test::apply(
      a, [&](auto& b) { return R::from_sorted(b, items.begin(), items.end()); });
  std::vector<R::BatchOp> ops;
  for (std::int64_t k = 1000; k < 1400; k += 2) {
    ops.push_back(R::BatchOp{R::BatchOpKind::kInsert, k + 1, k});
  }
  for (std::int64_t k = 6000; k < 6800; k += 2) {
    ops.push_back(R::BatchOp{R::BatchOpKind::kErase, k, std::nullopt});
  }
  std::vector<R::BatchOutcome> out(ops.size());
  R t2 = test::apply(
      a, [&](auto& b) { return t.apply_sorted_batch(b, ops, out); });
  EXPECT_EQ(t2.size(), 4096u + 200 - 400);
  EXPECT_TRUE(t2.check_invariants());
  EXPECT_TRUE(t.check_invariants());  // old version untouched
  // height <= 2 log2(N+1), the red-black worst case.
  EXPECT_LE(t2.height(),
            2 * static_cast<std::size_t>(std::log2(t2.size() + 1)) + 2);
}

// PR 10 range port: subtree-pruned in-order walk vs a std::set oracle,
// with count_range cross-checks and bounded-scan prefix semantics.
TEST(Rbt, ForEachRangeAndScanMatchOracle) {
  test::range_oracle_random<R>(3101);
}

// Sorted read batch: one descent-sharing sweep must answer exactly like
// per-key find(), with consistent savings accounting.
TEST(Rbt, SortedReadBatchMatchesPerKeyFind) {
  test::read_batch_oracle_random<R>(3111, 30, test::BatchKeyPattern::kUniform);
  test::read_batch_oracle_random<R>(3112, 20,
                                    test::BatchKeyPattern::kClustered);
}

}  // namespace
}  // namespace pathcopy
