#include <gtest/gtest.h>

#include "model/formulas.hpp"
#include "model/sim.hpp"

namespace pathcopy {
namespace {

model::SimConfig small_config() {
  model::SimConfig cfg;
  cfg.num_leaves = 1 << 14;
  cfg.cache_lines = 1 << 10;
  cfg.miss_cost = 64;
  cfg.ops = 4000;
  cfg.seed = 42;
  return cfg;
}

TEST(SeqSim, CompletesRequestedOps) {
  auto cfg = small_config();
  const auto r = model::run_seq_sim(cfg);
  EXPECT_EQ(r.ops_completed, cfg.ops);
  EXPECT_EQ(r.modifying_ops, cfg.ops);
  EXPECT_EQ(r.noop_ops, 0u);
  EXPECT_GT(r.total_ticks, 0u);
}

TEST(SeqSim, DeterministicPerSeed) {
  auto cfg = small_config();
  const auto a = model::run_seq_sim(cfg);
  const auto b = model::run_seq_sim(cfg);
  EXPECT_EQ(a.total_ticks, b.total_ticks);
  cfg.seed = 43;
  const auto c = model::run_seq_sim(cfg);
  EXPECT_NE(a.total_ticks, c.total_ticks);
}

TEST(SeqSim, MatchesAppendixA1Formula) {
  // Per-op cost should approach log M + R (log N - log M) once warm.
  auto cfg = small_config();
  cfg.ops = 60000;  // long run to amortize cold start
  const auto r = model::run_seq_sim(cfg);
  const double measured =
      static_cast<double>(r.total_ticks) / static_cast<double>(r.ops_completed);
  // A tree over N leaves has log N + 1 levels; the paper's formula counts
  // log N nodes per path, so evaluate it at 2N to account for the extra
  // level (log 2N = log N + 1).
  const double predicted = model::seq_op_cost(
      2.0 * static_cast<double>(cfg.num_leaves),
      static_cast<double>(cfg.cache_lines),
      static_cast<double>(cfg.miss_cost));
  // Real LRU keeps slightly fewer than log M full levels resident: every
  // one-off deep-node access inserts and evicts, polluting the top-level
  // working set the ideal model assumes is pinned. Empirically ~1.7 levels
  // are lost to pollution here, i.e. ~30% extra cost — allow 35%.
  EXPECT_NEAR(measured, predicted, 0.35 * predicted);
}

TEST(SeqSim, LargerCacheIsFaster) {
  auto cfg = small_config();
  cfg.cache_lines = 1 << 8;
  const auto small_cache = model::run_seq_sim(cfg);
  cfg.cache_lines = 1 << 12;
  const auto big_cache = model::run_seq_sim(cfg);
  EXPECT_LT(big_cache.total_ticks, small_cache.total_ticks);
}

TEST(ProtocolSim, SingleProcessHasNoCasFailures) {
  auto cfg = small_config();
  cfg.processes = 1;
  const auto r = model::run_protocol_sim(cfg);
  EXPECT_EQ(r.cas_failures, 0u);
  EXPECT_EQ(r.ops_completed, cfg.ops);
  EXPECT_EQ(r.attempts, cfg.ops);
}

TEST(ProtocolSim, DeterministicPerSeed) {
  auto cfg = small_config();
  cfg.processes = 4;
  const auto a = model::run_protocol_sim(cfg);
  const auto b = model::run_protocol_sim(cfg);
  EXPECT_EQ(a.total_ticks, b.total_ticks);
  EXPECT_EQ(a.cas_failures, b.cas_failures);
}

TEST(ProtocolSim, ContentionProducesRetries) {
  auto cfg = small_config();
  cfg.processes = 8;
  const auto r = model::run_protocol_sim(cfg);
  EXPECT_GT(r.cas_failures, 0u);
  // Up to P-1 attempts are still in flight when the op target is reached.
  const auto resolved = r.modifying_ops + r.noop_ops + r.cas_failures;
  EXPECT_GE(r.attempts, resolved);
  EXPECT_LE(r.attempts, resolved + cfg.processes);
}

TEST(ProtocolSim, RetriesMissAboutTwoNodes) {
  // The paper's central claim (§3.1): in expectation at most 2 nodes on
  // the retried path were replaced by the winning update, so a warm retry
  // incurs ~2 uncached loads.
  auto cfg = small_config();
  cfg.processes = 8;
  cfg.ops = 8000;
  const auto r = model::run_protocol_sim(cfg);
  ASSERT_GT(r.retry_count, 1000u);
  EXPECT_GT(r.misses_per_retry(), 0.5);
  // The paper's lockstep model sees exactly one winner between retries
  // (bound: 2). The event-driven sim lets a slow retry span more than one
  // winner, so the constant is slightly larger — but it must stay a small
  // constant, far below the full path length (15 here) or the cold cost.
  EXPECT_LE(r.misses_per_retry(), 3.5);
  const double path_len = 15.0;
  EXPECT_LT(r.misses_per_retry(), path_len / 3.0);
}

TEST(ProtocolSim, WriteHeavySpeedupExceedsOne) {
  // The headline result: pure-write workload, yet the UC beats the
  // sequential baseline once enough processes retry-and-prefetch.
  auto cfg = small_config();
  cfg.processes = 8;
  const double s = model::simulated_speedup(cfg);
  EXPECT_GT(s, 1.2);
}

TEST(ProtocolSim, SpeedupGrowsThenSaturates) {
  auto cfg = small_config();
  cfg.processes = 2;
  const double s2 = model::simulated_speedup(cfg);
  cfg.processes = 8;
  const double s8 = model::simulated_speedup(cfg);
  cfg.processes = 32;
  const double s32 = model::simulated_speedup(cfg);
  EXPECT_GT(s8, s2);
  // Saturation: the jump from 8 to 32 is much smaller than 2 to 8.
  EXPECT_LT(s32 / s8, s8 / s2);
}

TEST(ProtocolSim, TracksFormulaTrendInN) {
  // Speedup should increase with log N (the paper's Ω(log N) claim).
  model::SimConfig cfg = small_config();
  cfg.processes = 16;
  cfg.ops = 6000;
  cfg.num_leaves = 1 << 12;
  cfg.cache_lines = 1 << 9;
  const double s_small = model::simulated_speedup(cfg);
  cfg.num_leaves = 1 << 18;
  cfg.cache_lines = 1 << 13;  // keep M = O(N^(1-eps)) proportionally
  const double s_large = model::simulated_speedup(cfg);
  EXPECT_GT(s_large, s_small);
}

TEST(ProtocolSim, NoopFractionImprovesScaling) {
  // Random workload (§4.2): ~half the ops are semantic no-ops that never
  // CAS; the paper observes better speedups there than in Batch.
  auto cfg = small_config();
  cfg.processes = 8;
  cfg.ops = 8000;
  const double batch = model::simulated_speedup(cfg);
  cfg.noop_fraction = 0.5;
  const double random = model::simulated_speedup(cfg);
  EXPECT_GT(random, batch);
}

TEST(ProtocolSim, SerializedAllocatorCausesCollapse) {
  // Appendix B: with a contended shared allocator (refill trips cost
  // Theta(P)), throughput declines at high P instead of saturating.
  auto cfg = small_config();
  cfg.alloc_ticks_per_node = 10;
  cfg.alloc_refill_batch = 32;
  cfg.alloc_contention_ticks = 8;
  cfg.ops = 6000;
  cfg.processes = 8;
  const double s8 = model::simulated_speedup(cfg);
  cfg.processes = 64;
  const double s64 = model::simulated_speedup(cfg);
  EXPECT_LT(s64, s8);  // collapse, not saturation

  // And without the contention term the same configuration saturates.
  cfg.alloc_contention_ticks = 0;
  cfg.processes = 8;
  const double flat8 = model::simulated_speedup(cfg);
  cfg.processes = 64;
  const double flat64 = model::simulated_speedup(cfg);
  EXPECT_GE(flat64, 0.9 * flat8);
}

TEST(ProtocolSim, NoopOnlyWorkloadScalesFreely) {
  auto cfg = small_config();
  cfg.noop_fraction = 1.0;
  cfg.processes = 8;
  const auto r = model::run_protocol_sim(cfg);
  EXPECT_EQ(r.cas_failures, 0u);
  EXPECT_EQ(r.noop_ops, r.ops_completed);
}

TEST(ProtocolSim, RoundRobinFairnessUnderSymmetry) {
  // In the paper's Fig. 3/4 lockstep pattern every success costs P-1
  // failures elsewhere. Event-driven timing lets one retry span several
  // winners, so failures-per-success lands below P-1 — but it must scale
  // with P and stay bounded by P-1 (each failure is caused by exactly one
  // success, and a success can fail at most P-1 in-flight attempts).
  auto fps = [](std::size_t p) {
    auto cfg = small_config();
    cfg.processes = p;
    cfg.ops = 6000;
    const auto r = model::run_protocol_sim(cfg);
    return static_cast<double>(r.cas_failures) /
           static_cast<double>(r.modifying_ops);
  };
  const double fps3 = fps(3);
  const double fps6 = fps(6);
  const double fps12 = fps(12);
  EXPECT_GT(fps6, fps3);
  EXPECT_GT(fps12, fps6);
  EXPECT_GT(fps6, 0.3 * (6 - 1));
  EXPECT_LE(fps6, 1.2 * (6 - 1));
}

}  // namespace
}  // namespace pathcopy
