#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "alloc/malloc_alloc.hpp"
#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/atom.hpp"
#include "persist/external_bst.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard_roots.hpp"
#include "reclaim/watermark.hpp"
#include "util/rng.hpp"

namespace pathcopy {
namespace {

using T = persist::Treap<std::int64_t, std::int64_t>;
using E = persist::ExternalBst<std::int64_t, std::int64_t>;

template <class Smr>
class AtomConcurrent : public ::testing::Test {};

using Reclaimers =
    ::testing::Types<reclaim::EpochReclaimer, reclaim::WatermarkReclaimer,
                     reclaim::HazardRootReclaimer>;
TYPED_TEST_SUITE(AtomConcurrent, Reclaimers);

TYPED_TEST(AtomConcurrent, DisjointInsertsAllLand) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1500;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> total_updates{0};
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
        for (std::int64_t i = 0; i < kPerThread; ++i) {
          const std::int64_t key = w * kPerThread + i;
          const auto r = atom.update(
              ctx, [key](T t, auto& b) { return t.insert(b, key, key); });
          ASSERT_EQ(r, core::UpdateResult::kInstalled);
        }
        total_updates.fetch_add(ctx.stats.updates);
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(total_updates.load(), kThreads * kPerThread);

    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
    EXPECT_EQ(atom.version(), 1u + kThreads * kPerThread);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomConcurrent, AtomicReadModifyWriteIsLinearizable) {
  // kThreads * kIncrements atomic increments of one key's value. Any lost
  // update (a non-atomic read-modify-write) makes the final count smaller.
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  constexpr std::int64_t kIncrements = 2500;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    {
      typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
      atom.update(ctx, [](T t, auto& b) { return t.insert(b, 0, 0); });
    }
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&] {
        typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
        for (std::int64_t i = 0; i < kIncrements; ++i) {
          atom.update(ctx, [](T t, auto& b) {
            const std::int64_t cur = *t.find(0);
            return t.insert_or_assign(b, 0, cur + 1);
          });
        }
      });
    }
    for (auto& w : workers) w.join();
    typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    EXPECT_EQ(atom.read(ctx, [](T t) { return *t.find(0); }),
              kThreads * kIncrements);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomConcurrent, ReadersSeeConsistentSnapshotsDuringChurn) {
  alloc::MallocAlloc a;
  {
    TypeParam smr;
    core::Atom<T, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    // Invariant maintained by writers: the set always contains exactly one
    // contiguous run [lo, lo+64) — size stays 64 and min+63 == max.
    {
      typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
      atom.update(ctx, [](T t, auto& b) {
        for (std::int64_t i = 0; i < 64; ++i) t = t.insert(b, i, i);
        return t;
      });
    }
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
      for (std::int64_t lo = 0; lo < 3000; ++lo) {
        // One atomic update shifts the window: removes lo, adds lo+64.
        atom.update(ctx, [lo](T t, auto& b) {
          return t.erase(b, lo).insert(b, lo + 64, lo + 64);
        });
      }
      stop.store(true);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&] {
        typename core::Atom<T, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
        while (!stop.load()) {
          atom.read(ctx, [](T t) {
            ASSERT_EQ(t.size(), 64u);
            const auto* mn = t.min_node();
            const auto* mx = t.max_node();
            ASSERT_NE(mn, nullptr);
            ASSERT_EQ(mx->key - mn->key, 63);  // contiguous window, atomic shift
          });
        }
      });
    }
    writer.join();
    for (auto& r : readers) r.join();
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TYPED_TEST(AtomConcurrent, MixedChurnKeepsInvariants) {
  alloc::MallocAlloc a;
  constexpr int kThreads = 4;
  {
    TypeParam smr;
    core::Atom<E, TypeParam, alloc::MallocAlloc> atom(smr, *a.retire_backend());
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        typename core::Atom<E, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
        util::Xoshiro256 rng(w + 1);
        for (int i = 0; i < 2000; ++i) {
          const std::int64_t k = rng.range(0, 199);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](E t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](E t, auto& b) { return t.erase(b, k); });
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    typename core::Atom<E, TypeParam, alloc::MallocAlloc>::Ctx ctx(smr, a);
    EXPECT_TRUE(atom.read(ctx, [](E t) { return t.check_invariants(); }));
    EXPECT_LE(atom.read(ctx, [](E t) { return t.size(); }), 200u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

TEST(AtomConcurrentAlloc, ThreadCachedPoolUnderContention) {
  alloc::PoolBackend pool;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 1500;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache> atom(smr, pool);
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        alloc::ThreadCache cache(pool);  // per-thread magazine view
        core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(
            smr, cache);
        for (std::int64_t i = 0; i < kPerThread; ++i) {
          const std::int64_t key = w * kPerThread + i;
          atom.update(ctx, [key](T t, auto& b) { return t.insert(b, key, key); });
        }
        // No drain here: retired nodes free through the (stable) pool
        // backend, never through this soon-to-die thread cache.
      });
    }
    for (auto& w : workers) w.join();
    alloc::ThreadCache cache(pool);
    core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>::Ctx ctx(smr, cache);
    EXPECT_EQ(atom.read(ctx, [](T t) { return t.size(); }),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
}

TEST(AtomConcurrentRecycle, ContendedOracleStaysExactWithRecyclingHot) {
  // kThreads * kIncrements atomic increments of one key, run with the
  // full memory loop hot: per-thread ThreadCaches, failed-install
  // recycling (builder bin reuse on every lost CAS) and bundle->magazine
  // retire sinks — all defaults, this test pins down that they ARE the
  // defaults. Any use-after-recycle (a losing attempt's node reachable by
  // a reader, a retired block reused before its grace period) manifests
  // as a lost or phantom increment; the ASan/TSan CI jobs run this suite
  // to chase the same window at the byte level.
  alloc::PoolBackend pool;
  constexpr int kThreads = 4;
  constexpr std::int64_t kIncrements = 2000;
  using Atom = core::Atom<T, reclaim::EpochReclaimer, alloc::ThreadCache>;
  std::atomic<std::uint64_t> failures{0}, recycled{0}, failed_nodes{0};
  {
    reclaim::EpochReclaimer smr;
    Atom atom(smr, pool);
    {
      alloc::ThreadCache cache(pool);
      Atom::Ctx ctx(smr, cache);
      atom.update(ctx, [](T t, auto& b) { return t.insert(b, 0, 0); });
    }
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&] {
        alloc::ThreadCache cache(pool);  // destroyed after ctx: sink-safe
        Atom::Ctx ctx(smr, cache);
        for (std::int64_t i = 0; i < kIncrements; ++i) {
          atom.update(ctx, [](T t, auto& b) {
            const std::int64_t cur = *t.find(0);
            return t.insert_or_assign(b, 0, cur + 1);
          });
        }
        failures += ctx.stats.cas_failures;
        recycled += ctx.stats.recycled_nodes;
        failed_nodes += ctx.stats.failed_attempt_nodes;
      });
    }
    for (auto& w : workers) w.join();
    alloc::ThreadCache cache(pool);
    Atom::Ctx ctx(smr, cache);
    // The oracle: exactly kThreads * kIncrements increments landed.
    EXPECT_EQ(atom.read(ctx, [](T t) { return *t.find(0); }),
              kThreads * kIncrements);
    EXPECT_TRUE(atom.read(ctx, [](T t) { return t.check_invariants(); }));
  }
  // Every lost CAS parks its path in the bin and the retry's first
  // create() takes from it, so reuse keeps pace with failures whenever
  // contention actually happened (it may not on a single-core host).
  if (failures.load() > 0) {
    EXPECT_GT(failed_nodes.load(), 0u);
    EXPECT_GE(recycled.load(), failures.load());
  }
}

TEST(AtomConcurrentStats, ContentionIsObservable) {
  // Not asserting a minimum (scheduling dependent), just that the counter
  // wiring adds up: attempts == updates + noops + cas_failures.
  alloc::MallocAlloc a;
  {
    reclaim::EpochReclaimer smr;
    core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc> atom(
        smr, *a.retire_backend());
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> attempts{0}, updates{0}, noops{0}, failures{0};
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        core::Atom<T, reclaim::EpochReclaimer, alloc::MallocAlloc>::Ctx ctx(smr, a);
        util::Xoshiro256 rng(w + 100);
        for (int i = 0; i < 3000; ++i) {
          const std::int64_t k = rng.range(0, 63);
          if (rng.chance(1, 2)) {
            atom.update(ctx, [k](T t, auto& b) { return t.insert(b, k, k); });
          } else {
            atom.update(ctx, [k](T t, auto& b) { return t.erase(b, k); });
          }
        }
        attempts += ctx.stats.attempts;
        updates += ctx.stats.updates;
        noops += ctx.stats.noop_updates;
        failures += ctx.stats.cas_failures;
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(attempts.load(), updates.load() + noops.load() + failures.load());
    EXPECT_EQ(updates.load() + noops.load(), 4u * 3000u);
  }
  EXPECT_EQ(a.stats().live_blocks(), 0u);
}

}  // namespace
}  // namespace pathcopy
