// Lock-free priority scheduler from a persistent heap.
//
// The universal construction is not tied to search trees: any
// path-copying structure plugs in. Here a persistent leftist heap becomes
// a concurrent priority queue: producers push (deadline, task-id) pairs,
// consumers atomically pop the most urgent task. pop-and-return works by
// capturing the popped element inside the update lambda — the whole
// read-top-then-pop is a single atomic step, so no two consumers can
// claim the same task.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/atom.hpp"
#include "persist/leftist_heap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace {

struct Task {
  std::int64_t deadline;
  std::int64_t id;

  bool operator<(const Task& o) const {
    return deadline != o.deadline ? deadline < o.deadline : id < o.id;
  }
};

using Heap = pathcopy::persist::LeftistHeap<Task>;
using Smr = pathcopy::reclaim::EpochReclaimer;
using Alloc = pathcopy::alloc::ThreadCache;
using Scheduler = pathcopy::core::Atom<Heap, Smr, Alloc>;

constexpr int kProducers = 2;
constexpr int kConsumers = 2;
constexpr std::int64_t kTasksPerProducer = 5000;

}  // namespace

int main() {
  pathcopy::alloc::PoolBackend pool;
  Smr smr;
  Scheduler sched(smr, pool);

  std::atomic<std::int64_t> produced{0}, consumed{0};
  std::atomic<bool> producers_done{false};
  std::vector<std::int64_t> executed_deadlines[kConsumers];

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Alloc cache(pool);
      Scheduler::Ctx ctx(smr, cache);
      pathcopy::util::Xoshiro256 rng(p + 17);
      for (std::int64_t i = 0; i < kTasksPerProducer; ++i) {
        const Task task{rng.range(0, 1000000), p * kTasksPerProducer + i};
        sched.update(ctx, [task](Heap h, auto& b) { return h.push(b, task); });
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      Alloc cache(pool);
      Scheduler::Ctx ctx(smr, cache);
      for (;;) {
        Task claimed{-1, -1};
        const auto result = sched.update(ctx, [&claimed](Heap h, auto& b) {
          if (h.empty()) return h;  // same version: no-op, no CAS
          claimed = h.top();
          return h.pop(b);
        });
        if (result == pathcopy::core::UpdateResult::kInstalled) {
          executed_deadlines[c].push_back(claimed.deadline);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load() &&
                   consumed.load() == produced.load()) {
          return;  // queue drained and nothing more is coming
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  producers_done.store(true);
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  std::printf("produced %lld, consumed %lld (no task lost or duplicated)\n",
              static_cast<long long>(produced.load()),
              static_cast<long long>(consumed.load()));
  for (int c = 0; c < kConsumers; ++c) {
    std::printf("consumer %d executed %zu tasks\n", c,
                executed_deadlines[c].size());
  }

  // Global priority order cannot be perfectly serial across consumers,
  // but each consumer's own stream must be (weakly) deadline-monotone
  // modulo concurrent pushes; as a sanity metric report inversions.
  std::size_t inversions = 0;
  for (int c = 0; c < kConsumers; ++c) {
    for (std::size_t i = 1; i < executed_deadlines[c].size(); ++i) {
      if (executed_deadlines[c][i] < executed_deadlines[c][i - 1]) ++inversions;
    }
  }
  std::printf("per-consumer deadline inversions: %zu (expected: small, "
              "caused only by late-arriving urgent tasks)\n", inversions);
  return 0;
}
