// Quickstart: a lock-free concurrent ordered map in ~40 lines of setup.
//
// The recipe, matching §2 of the paper:
//   1. pick a persistent structure        (persist::Treap)
//   2. pick a reclamation scheme          (reclaim::EpochReclaimer)
//   3. pick an allocator                  (pool + per-thread caches)
//   4. wrap the root in a core::Atom      (Read/CAS register + retry loop)
//
// Every thread gets a ThreadContext; updates are lambdas from the current
// version to the next one, installed atomically with a single CAS.
#include <cstdio>
#include <thread>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/atom.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"

using Map = pathcopy::persist::Treap<std::int64_t, std::int64_t>;
using Smr = pathcopy::reclaim::EpochReclaimer;
using Alloc = pathcopy::alloc::ThreadCache;
using ConcurrentMap = pathcopy::core::Atom<Map, Smr, Alloc>;

int main() {
  pathcopy::alloc::PoolBackend pool;  // shared slab pool
  Smr smr;                            // epoch-based reclamation
  ConcurrentMap map(smr, pool);

  // --- four writer threads insert disjoint key ranges concurrently ---
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      Alloc cache(pool);                  // per-thread allocator view
      ConcurrentMap::Ctx ctx(smr, cache); // per-thread context
      for (std::int64_t i = 0; i < 10000; ++i) {
        const std::int64_t key = w * 10000 + i;
        map.update(ctx, [key](Map m, auto& b) {
          return m.insert(b, key, key * key);
        });
      }
      std::printf("writer %d done: %llu installs, %llu CAS retries\n", w,
                  static_cast<unsigned long long>(ctx.stats.updates),
                  static_cast<unsigned long long>(ctx.stats.cas_failures));
    });
  }
  for (auto& t : writers) t.join();

  // --- queries run on an immutable snapshot: no locks, no torn reads ---
  Alloc cache(pool);
  ConcurrentMap::Ctx ctx(smr, cache);
  map.read(ctx, [](Map m) {
    std::printf("size            = %zu\n", m.size());
    std::printf("contains 123    = %s\n", m.contains(123) ? "yes" : "no");
    std::printf("value[123]      = %lld\n",
                static_cast<long long>(*m.find(123)));
    std::printf("min key         = %lld\n",
                static_cast<long long>(m.min_node()->key));
    std::printf("max key         = %lld\n",
                static_cast<long long>(m.max_node()->key));
    std::printf("rank(20000)     = %zu\n", m.rank(20000));
    std::printf("10001st key     = %lld\n",
                static_cast<long long>(m.kth(10000)->key));
    std::printf("keys in [5,15)  = %zu\n", m.count_range(5, 15));
  });

  // --- an atomic read-modify-write: the whole lambda is one atomic step ---
  map.update(ctx, [](Map m, auto& b) {
    const std::int64_t v = *m.find(123);
    return m.insert_or_assign(b, 123, v + 1);
  });
  std::printf("value[123] bumped to %lld atomically\n",
              static_cast<long long>(
                  map.read(ctx, [](Map m) { return *m.find(123); })));

  // --- erase, and verify version counting ---
  map.update(ctx, [](Map m, auto& b) { return m.erase(b, 123); });
  std::printf("after erase: contains 123 = %s, version = %llu\n",
              map.read(ctx, [](Map m) { return m.contains(123); }) ? "yes" : "no",
              static_cast<unsigned long long>(map.version()));
  return 0;
}
