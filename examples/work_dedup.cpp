// Work deduplication through the combining universal construction.
//
// A fleet of workers drains overlapping batches of job ids (retries,
// redeliveries, duplicated webhooks — every distributed queue produces
// them). Exactly one worker must execute each job. The idiom: a shared
// "claimed" set where insert() doubles as an atomic claim — true means
// "you own it, run it", false means "someone beat you to it".
//
// The set is a CombiningAtom: each claim is announced in a per-thread
// slot, and whichever worker wins the root CAS applies *all* pending
// claims in one batch. Under contention one CAS completes many claims —
// the stats printed at the end show how many operations each installed
// version absorbed and how often a worker's claim was completed by a
// peer (helping), the two signatures of a combining construction.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/combining.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Claimed = persist::Treap<std::int64_t, std::int64_t>;
using Smr = reclaim::EpochReclaimer;
using Alloc = alloc::ThreadCache;
using ClaimSet = core::CombiningAtom<Claimed, Smr, Alloc, 16>;

constexpr int kWorkers = 4;
constexpr std::int64_t kJobs = 3000;     // distinct job ids
constexpr int kDeliveriesPerJob = 3;     // each id shows up this many times

}  // namespace

int main() {
  alloc::PoolBackend pool;
  Smr smr;
  Alloc root_cache(pool);
  ClaimSet claimed(smr, root_cache);

  // Build the delivery stream: every job id appears kDeliveriesPerJob
  // times, shuffled, then dealt round-robin to the workers.
  std::vector<std::int64_t> stream;
  stream.reserve(kJobs * kDeliveriesPerJob);
  for (int d = 0; d < kDeliveriesPerJob; ++d) {
    for (std::int64_t j = 0; j < kJobs; ++j) stream.push_back(j);
  }
  util::Xoshiro256 rng(2024);
  for (std::size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[rng.below(i)]);
  }

  std::atomic<std::uint64_t> executed{0}, skipped{0};
  std::atomic<std::uint64_t> installs{0}, batched{0}, helped{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Alloc cache(pool);
      ClaimSet::Ctx ctx(smr, cache);
      const unsigned slot = claimed.register_slot();
      std::uint64_t ran = 0, dup = 0;
      for (std::size_t i = w; i < stream.size(); i += kWorkers) {
        const std::int64_t job = stream[i];
        if (claimed.insert(ctx, slot, job, w)) {
          ++ran;  // we own the job: "execute" it
        } else {
          ++dup;  // duplicate delivery, someone already ran it
        }
      }
      executed += ran;
      skipped += dup;
      installs += ctx.stats.updates;
      batched += ctx.stats.combined_ops;
      helped += ctx.stats.helped_completions;
    });
  }
  for (auto& t : workers) t.join();

  Alloc cache(pool);
  ClaimSet::Ctx ctx(smr, cache);
  const std::size_t unique = claimed.size(ctx);

  std::printf("deliveries processed: %zu (%d workers)\n", stream.size(),
              kWorkers);
  std::printf("executed %llu jobs, skipped %llu duplicates\n",
              static_cast<unsigned long long>(executed.load()),
              static_cast<unsigned long long>(skipped.load()));
  std::printf("claimed set holds %zu ids (must equal %lld distinct jobs)\n",
              unique, static_cast<long long>(kJobs));
  std::printf("exactly-once: %s\n",
              (executed.load() == static_cast<std::uint64_t>(kJobs) &&
               unique == static_cast<std::size_t>(kJobs))
                  ? "yes"
                  : "VIOLATED");
  const double batch = installs.load() == 0
                           ? 0.0
                           : double(batched.load()) / double(installs.load());
  std::printf("combining: %llu installed versions absorbed %llu claims "
              "(%.2f per CAS), %llu claims finished by a helping peer\n",
              static_cast<unsigned long long>(installs.load()),
              static_cast<unsigned long long>(batched.load()), batch,
              static_cast<unsigned long long>(helped.load()));
  return 0;
}
