// MVCC key-value store: consistent analytics over live writers.
//
// The motivation the paper borrows from multi-version concurrency control
// (Sun et al., VLDB'19): transactional writers keep committing while an
// analytical reader pins a *snapshot* — one immutable version — and scans
// it at leisure. The WatermarkReclaimer tracks the oldest pinned version
// so superseded nodes are reclaimed the moment no snapshot can reach them.
//
// The demo maintains account balances under random transfers; every
// snapshot must see the invariant "total balance == number_of_accounts *
// 1000" even though transfers race with the scan.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/atom.hpp"
#include "persist/treap.hpp"
#include "reclaim/watermark.hpp"
#include "util/rng.hpp"

using Accounts = pathcopy::persist::Treap<std::int64_t, std::int64_t>;
using Smr = pathcopy::reclaim::WatermarkReclaimer;
using Alloc = pathcopy::alloc::ThreadCache;
using Store = pathcopy::core::Atom<Accounts, Smr, Alloc>;

constexpr std::int64_t kAccounts = 1024;
constexpr std::int64_t kInitialBalance = 1000;

int main() {
  pathcopy::alloc::PoolBackend pool;
  Smr smr;
  Store store(smr, pool);

  // Seed the store in one bulk update.
  {
    Alloc cache(pool);
    Store::Ctx ctx(smr, cache);
    std::vector<std::pair<std::int64_t, std::int64_t>> init;
    for (std::int64_t id = 0; id < kAccounts; ++id) {
      init.emplace_back(id, kInitialBalance);
    }
    store.update(ctx, [&](Accounts, auto& b) {
      return Accounts::from_sorted(b, init.begin(), init.end());
    });
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> transfers{0};

  // --- two transfer writers: debit one account, credit another, in ONE
  //     atomic update (this is a transaction) ---
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Alloc cache(pool);
      Store::Ctx ctx(smr, cache);
      pathcopy::util::Xoshiro256 rng(w + 1);
      for (int i = 0; i < 20000; ++i) {
        const std::int64_t from = rng.below(kAccounts);
        const std::int64_t to = rng.below(kAccounts);
        const std::int64_t amount = rng.range(1, 50);
        store.update(ctx, [&](Accounts a, auto& b) {
          const std::int64_t f = *a.find(from);
          if (f < amount || from == to) return a;  // no-op transfer
          const std::int64_t t = *a.find(to);
          return a.insert_or_assign(b, from, f - amount)
              .insert_or_assign(b, to, t + amount);
        });
        transfers.fetch_add(1, std::memory_order_relaxed);
      }
      stop.store(true);
    });
  }

  // --- analytical reader: pins snapshots and audits the invariant ---
  std::thread analyst([&] {
    std::uint64_t audits = 0;
    while (!stop.load()) {
      auto snap = store.snapshot();  // pins one version, writers continue
      // snap.root() is a TOKEN (empty versions are tagged sentinels);
      // structural_root() maps it to what from_root expects.
      const Accounts frozen =
          Accounts::from_root(Store::structural_root(snap.root()));
      std::int64_t total = 0;
      std::int64_t richest = 0;
      frozen.for_each([&](const std::int64_t&, const std::int64_t& v) {
        total += v;
        if (v > richest) richest = v;
      });
      if (total != kAccounts * kInitialBalance) {
        std::printf("AUDIT FAILED at version %llu: total=%lld\n",
                    static_cast<unsigned long long>(snap.version()),
                    static_cast<long long>(total));
        std::abort();
      }
      ++audits;
      if (audits % 50 == 0) {
        std::printf("audit #%llu @ version %-8llu total=%lld richest=%lld "
                    "(pending reclaim: %llu nodes)\n",
                    static_cast<unsigned long long>(audits),
                    static_cast<unsigned long long>(snap.version()),
                    static_cast<long long>(total),
                    static_cast<long long>(richest),
                    static_cast<unsigned long long>(smr.pending_nodes()));
      }
    }
    std::printf("analyst: %llu consistent audits, zero violations\n",
                static_cast<unsigned long long>(audits));
  });

  for (auto& w : writers) w.join();
  analyst.join();

  Alloc cache(pool);
  Store::Ctx ctx(smr, cache);
  std::printf("final: %llu transfers, version %llu, watermark reclaimed "
              "all but %llu nodes\n",
              static_cast<unsigned long long>(transfers.load()),
              static_cast<unsigned long long>(store.version()),
              static_cast<unsigned long long>(smr.pending_nodes()));
  return 0;
}
