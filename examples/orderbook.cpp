// Limit order book: order-statistic queries over concurrent snapshots.
//
// Each side of the book is a persistent treap keyed by price tick with
// the resting quantity as the value. Makers add and cancel liquidity,
// takers lift the best level — all lock-free through the universal
// construction — while an analytics reader computes best-bid/ask, spread
// and cumulative depth from immutable snapshots, using the trees' size
// augmentation (rank / kth / count_range) instead of scans.
//
// The point this example makes: a snapshot is one pointer, so "walk the
// top 5 levels while the book churns" needs no locks, no retry loop, and
// sees a book state that actually existed.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "alloc/pool_alloc.hpp"
#include "alloc/thread_cache_alloc.hpp"
#include "core/atom.hpp"
#include "persist/treap.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"

namespace {

using namespace pathcopy;
using Book = persist::Treap<std::int64_t, std::int64_t>;  // price -> qty
using Smr = reclaim::EpochReclaimer;
using Alloc = alloc::ThreadCache;
using BookAtom = core::Atom<Book, Smr, Alloc>;

constexpr std::int64_t kMid = 10'000;   // ticks
constexpr std::int64_t kBand = 200;     // maker placement band around mid

/// Adds quantity at a price level (creating the level if absent).
void add_liquidity(BookAtom& side, BookAtom::Ctx& ctx, std::int64_t px,
                   std::int64_t qty) {
  side.update(ctx, [&](Book book, auto& b) {
    const std::int64_t* cur = book.find(px);
    return book.insert_or_assign(b, px, (cur != nullptr ? *cur : 0) + qty);
  });
}

/// Removes a whole price level (a cancel, or a fill that sweeps it).
bool remove_level(BookAtom& side, BookAtom::Ctx& ctx, std::int64_t px) {
  return side.update(ctx, [&](Book book, auto& b) {
           return book.erase(b, px);
         }) == core::UpdateResult::kInstalled;
}

struct DepthReport {
  std::int64_t best = 0;
  std::size_t levels = 0;
  std::int64_t qty_top5 = 0;
  std::size_t levels_within_band = 0;
};

/// One consistent snapshot, several order-statistic queries — no locks.
DepthReport scan_side(BookAtom& side, BookAtom::Ctx& ctx, bool is_bid) {
  return side.read(ctx, [&](Book book) {
    DepthReport r;
    r.levels = book.size();
    if (book.empty()) return r;
    r.best = is_bid ? book.max_node()->key : book.min_node()->key;
    for (std::size_t i = 0; i < 5 && i < book.size(); ++i) {
      const auto* lvl =
          is_bid ? book.kth(book.size() - 1 - i) : book.kth(i);
      r.qty_top5 += lvl->value;
    }
    r.levels_within_band =
        is_bid ? book.count_range(r.best - kBand, r.best + 1)
               : book.count_range(r.best, r.best + kBand + 1);
    return r;
  });
}

}  // namespace

int main() {
  alloc::PoolBackend pool;
  Smr smr;
  BookAtom bids(smr, pool);
  BookAtom asks(smr, pool);

  // Seed both sides with resting liquidity around the mid.
  {
    Alloc cache(pool);
    BookAtom::Ctx ctx(smr, cache);
    util::Xoshiro256 rng(1);
    for (int i = 0; i < 400; ++i) {
      add_liquidity(bids, ctx, kMid - 1 - rng.below(kBand), 10 + rng.below(90));
      add_liquidity(asks, ctx, kMid + 1 + rng.below(kBand), 10 + rng.below(90));
    }
  }

  std::atomic<std::uint64_t> fills{0}, cancels{0}, quotes{0};

  // Two makers, one taker, all lock-free against the same books.
  std::vector<std::thread> traders;
  for (int m = 0; m < 2; ++m) {
    traders.emplace_back([&, m] {
      Alloc cache(pool);
      BookAtom::Ctx ctx(smr, cache);
      util::Xoshiro256 rng(100 + m);
      for (int i = 0; i < 4000; ++i) {
        BookAtom& side = rng.chance(1, 2) ? bids : asks;
        const bool bid_side = &side == &bids;
        const std::int64_t px = bid_side ? kMid - 1 - rng.below(kBand)
                                         : kMid + 1 + rng.below(kBand);
        if (rng.chance(3, 4)) {
          add_liquidity(side, ctx, px, 10 + rng.below(90));
          ++quotes;
        } else if (remove_level(side, ctx, px)) {
          ++cancels;
        }
      }
    });
  }
  traders.emplace_back([&] {
    Alloc cache(pool);
    BookAtom::Ctx ctx(smr, cache);
    util::Xoshiro256 rng(7);
    for (int i = 0; i < 2000; ++i) {
      BookAtom& side = rng.chance(1, 2) ? bids : asks;
      const bool bid_side = &side == &bids;
      // Lift the current best level: read a snapshot, then erase that
      // level (the erase is a no-op if someone else swept it first —
      // exactly the race a matching engine must tolerate).
      const std::int64_t best = side.read(ctx, [&](Book book) {
        if (book.empty()) return std::int64_t{0};
        return bid_side ? book.max_node()->key : book.min_node()->key;
      });
      if (best != 0 && remove_level(side, ctx, best)) ++fills;
    }
  });
  for (auto& t : traders) t.join();

  Alloc cache(pool);
  BookAtom::Ctx ctx(smr, cache);
  const DepthReport bid = scan_side(bids, ctx, true);
  const DepthReport ask = scan_side(asks, ctx, false);

  std::printf("order book after %llu quotes, %llu cancels, %llu fills\n",
              static_cast<unsigned long long>(quotes.load()),
              static_cast<unsigned long long>(cancels.load()),
              static_cast<unsigned long long>(fills.load()));
  std::printf("  bid: best %lld, %zu levels (%zu within band), top-5 qty %lld\n",
              static_cast<long long>(bid.best), bid.levels,
              bid.levels_within_band, static_cast<long long>(bid.qty_top5));
  std::printf("  ask: best %lld, %zu levels (%zu within band), top-5 qty %lld\n",
              static_cast<long long>(ask.best), ask.levels,
              ask.levels_within_band, static_cast<long long>(ask.qty_top5));
  if (bid.best != 0 && ask.best != 0) {
    std::printf("  spread: %lld ticks, mid %lld\n",
                static_cast<long long>(ask.best - bid.best),
                static_cast<long long>((ask.best + bid.best) / 2));
  }
  std::printf("  book versions installed: bids v%llu, asks v%llu\n",
              static_cast<unsigned long long>(bids.version()),
              static_cast<unsigned long long>(asks.version()));
  return 0;
}
