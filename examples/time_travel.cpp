// Time travel: version history, undo, and O(sharing) checkpoints.
//
// Persistence is not only a concurrency trick — every successful update
// yields a complete, immutable prior version at the cost of one copied
// path. This example keeps an explicit history of a configuration store,
// answers "what did the config look like at step k?", computes diffs
// between arbitrary versions, and undoes to any checkpoint in O(1).
//
// Node lifetime: history pins arbitrary old versions, so the example uses
// an arena (wholesale reclamation at exit) with the leaky reclaimer — the
// library's designated configuration for unbounded-history workloads.
#include <cstdio>
#include <string>
#include <vector>

#include "alloc/arena_alloc.hpp"
#include "core/builder.hpp"
#include "persist/treap.hpp"

using Config = pathcopy::persist::Treap<std::int64_t, std::int64_t>;
using Arena = pathcopy::alloc::Arena;
using Builder = pathcopy::core::Builder<Arena>;

namespace {

// A tiny version-control wrapper: every commit records the new version.
class History {
 public:
  explicit History(Arena& arena) : arena_(&arena) { versions_.push_back({}); }

  template <class F>
  void commit(const char* message, F&& change) {
    Builder b(*arena_);
    Config next = change(versions_.back(), b);
    b.seal();
    (void)b.commit();  // arena keeps superseded nodes alive for history
    versions_.push_back(next);
    messages_.push_back(message);
  }

  const Config& at(std::size_t version) const { return versions_.at(version); }
  const Config& head() const { return versions_.back(); }
  std::size_t head_index() const { return versions_.size() - 1; }

  void undo_to(std::size_t version) {
    // O(1): a version is a root pointer. Nothing is copied or destroyed.
    versions_.push_back(versions_.at(version));
    messages_.push_back("undo");
  }

  // Keys whose value differs (or exists on only one side).
  static std::vector<std::int64_t> diff(const Config& a, const Config& b) {
    std::vector<std::int64_t> changed;
    a.for_each([&](const std::int64_t& k, const std::int64_t& v) {
      const auto* other = b.find(k);
      if (other == nullptr || *other != v) changed.push_back(k);
    });
    b.for_each([&](const std::int64_t& k, const std::int64_t&) {
      if (!a.contains(k)) changed.push_back(k);
    });
    return changed;
  }

  const char* message(std::size_t version) const {
    return version == 0 ? "(genesis)" : messages_.at(version - 1);
  }

 private:
  Arena* arena_;
  std::vector<Config> versions_;
  std::vector<const char*> messages_;
};

}  // namespace

int main() {
  Arena arena;
  History h(arena);

  h.commit("set defaults", [](Config c, Builder& b) {
    for (std::int64_t key = 0; key < 8; ++key) c = c.insert(b, key, 100);
    return c;
  });
  h.commit("tune key 3", [](Config c, Builder& b) {
    return c.insert_or_assign(b, 3, 250);
  });
  h.commit("add key 8", [](Config c, Builder& b) { return c.insert(b, 8, 42); });
  h.commit("drop key 0", [](Config c, Builder& b) { return c.erase(b, 0); });

  std::printf("history (%zu versions):\n", h.head_index() + 1);
  for (std::size_t v = 0; v <= h.head_index(); ++v) {
    std::printf("  v%zu: %-14s size=%zu\n", v, h.message(v), h.at(v).size());
  }

  // Point-in-time queries: every version is fully queryable forever.
  std::printf("\nkey 3 over time: ");
  for (std::size_t v = 1; v <= h.head_index(); ++v) {
    const auto* val = h.at(v).find(3);
    std::printf("v%zu=%s ", v, val ? std::to_string(*val).c_str() : "-");
  }
  std::printf("\n");

  // Diff two arbitrary versions.
  const auto changed = History::diff(h.at(1), h.head());
  std::printf("diff v1 -> head: %zu keys changed:", changed.size());
  for (const auto k : changed) std::printf(" %lld", static_cast<long long>(k));
  std::printf("\n");

  // Sharing: consecutive versions share all but the copied path.
  for (std::size_t v = 1; v <= h.head_index(); ++v) {
    std::printf("shared nodes v%zu & v%zu: %zu (of %zu)\n", v - 1, v,
                Config::shared_nodes(h.at(v - 1), h.at(v)), h.at(v).size());
  }

  // Undo: O(1), and redo-after-undo keeps the full tree of history.
  h.undo_to(2);
  std::printf("\nafter undo to v2: size=%zu, key 0 %s, key 8 %s\n",
              h.head().size(), h.head().contains(0) ? "present" : "absent",
              h.head().contains(8) ? "present" : "absent");
  std::printf("arena holds %zu blocks for the entire history\n",
              arena.block_count());
  return 0;
}
